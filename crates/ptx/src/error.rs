//! Crate-level typed error for the PTX toolchain.
//!
//! The individual passes keep their precise error types
//! ([`crate::parser::ParseError`], [`crate::interp::ExecError`]);
//! [`PtxError`] is the umbrella that fallible pipeline entry points
//! ([`crate::absint::try_analyze_launch`],
//! [`crate::interp::try_execute_launch`]) return so callers can propagate
//! one error type through a whole toolchain run.

use crate::cancel::CancelCause;
use crate::interp::ExecError;
use crate::parser::ParseError;
use std::fmt;

/// Any failure of the PTX toolchain: parsing, launch validation, or
/// functional execution.
#[derive(Debug, Clone, PartialEq)]
pub enum PtxError {
    /// Source text failed to parse.
    Parse(ParseError),
    /// A launch is malformed independent of the kernel's behavior
    /// (argument/parameter arity mismatch, zero-thread blocks).
    BadLaunch {
        /// Kernel name.
        kernel: String,
        /// What was wrong.
        reason: String,
    },
    /// Functional execution failed.
    Exec(ExecError),
    /// A cooperative [`crate::cancel::CancelToken`] fired at an analysis
    /// phase boundary; the analysis was abandoned cleanly.
    Cancelled(CancelCause),
}

impl fmt::Display for PtxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PtxError::Parse(e) => write!(f, "parse error: {e}"),
            PtxError::BadLaunch { kernel, reason } => {
                write!(f, "invalid launch of `{kernel}`: {reason}")
            }
            PtxError::Exec(e) => write!(f, "execution error: {e}"),
            PtxError::Cancelled(cause) => write!(f, "analysis {cause}"),
        }
    }
}

impl std::error::Error for PtxError {}

impl From<ParseError> for PtxError {
    fn from(e: ParseError) -> Self {
        PtxError::Parse(e)
    }
}

impl From<ExecError> for PtxError {
    fn from(e: ExecError) -> Self {
        PtxError::Exec(e)
    }
}

/// Checks structural launch invariants shared by every fallible entry
/// point: the argument list must match the kernel's parameter list and
/// thread blocks must contain at least one thread. (Zero-block grids are
/// legal — CUDA rejects them, but degenerate grids must flow through the
/// analysis pipeline without tripping it.)
pub fn validate_launch(launch: &crate::kernel::Launch) -> Result<(), PtxError> {
    let kernel = &launch.kernel;
    if launch.args.len() != kernel.params.len() {
        return Err(PtxError::BadLaunch {
            kernel: kernel.name.clone(),
            reason: format!(
                "{} arguments for {} parameters",
                launch.args.len(),
                kernel.params.len()
            ),
        });
    }
    if launch.threads_per_block() == 0 {
        return Err(PtxError::BadLaunch {
            kernel: kernel.name.clone(),
            reason: "zero threads per block".into(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{ArgValue, Dim3, Launch};
    use crate::parser::parse_kernel;
    use std::sync::Arc;

    fn kernel() -> Arc<crate::kernel::Kernel> {
        Arc::new(parse_kernel(".entry k(.param .u64 A) { ld.param.u64 %rd1, [A]; ret; }").unwrap())
    }

    #[test]
    fn arity_mismatch_is_bad_launch() {
        // Bypass the asserting constructor: this models metadata corrupted
        // after construction, which validate_launch must still reject.
        let l = Launch {
            kernel: kernel(),
            grid: Dim3::x(1),
            block: Dim3::x(32),
            args: vec![],
        };
        let err = validate_launch(&l).unwrap_err();
        assert!(matches!(err, PtxError::BadLaunch { .. }), "{err}");
        assert!(err.to_string().contains("0 arguments for 1 parameters"));
        assert!(Launch::try_new(kernel(), Dim3::x(1), Dim3::x(32), vec![]).is_err());
    }

    #[test]
    fn zero_thread_block_is_bad_launch() {
        let l = Launch::new(
            kernel(),
            Dim3::x(1),
            Dim3 { x: 0, y: 1, z: 1 },
            vec![ArgValue::Ptr(0x1000)],
        );
        assert!(validate_launch(&l).is_err());
    }

    #[test]
    fn zero_block_grid_is_allowed() {
        let l = Launch::new(
            kernel(),
            Dim3 { x: 0, y: 1, z: 1 },
            Dim3::x(32),
            vec![ArgValue::Ptr(0x1000)],
        );
        assert!(validate_launch(&l).is_ok());
    }

    #[test]
    fn error_conversions_compose() {
        let parse: PtxError = parse_kernel("garbage").unwrap_err().into();
        assert!(matches!(parse, PtxError::Parse(_)));
        let exec: PtxError = ExecError::BarrierDivergence { tb: 3 }.into();
        assert!(exec.to_string().contains("barrier divergence"));
    }
}
