//! # bm-ptx — mini-PTX toolchain for the BlockMaestro reproduction
//!
//! A self-contained PTX-like intermediate representation with everything the
//! paper's kernel-launch-time machinery needs:
//!
//! * an [`isa`] mirroring the address-arithmetic subset of NVIDIA PTX,
//!   including the SIMT special registers (`%tid`, `%ctaid`, `%ntid`,
//!   `%nctaid`) and predicated branches;
//! * a [`parser`] for the textual form (and a canonical printer);
//! * a functional [`interp`]reter used to validate workloads and to check
//!   that BlockMaestro's overlapped schedules preserve program results;
//! * [`taint`]: Algorithm 1's backward address-origin slice;
//! * [`absint`]: per-thread-block value-range analysis producing the
//!   read/write sets that inter-kernel dependency graphs are built from;
//! * [`trace`]: dynamic warp traces feeding the `bm-simt` timing model;
//! * [`par`]: the [`ParallelConfig`] knob and deterministic fork/join
//!   helper the whole analysis pipeline shares.
//!
//! ## Example: extract per-TB write sets at launch time
//!
//! ```
//! use bm_ptx::{absint, kernel::{ArgValue, Dim3, Launch}, parser};
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), bm_ptx::parser::ParseError> {
//! let kernel = Arc::new(parser::parse_kernel(
//!     ".entry scale(.param .u64 A) {
//!        ld.param.u64 %rd1, [A];
//!        mov.u32 %r1, %ctaid.x;
//!        mov.u32 %r2, %ntid.x;
//!        mov.u32 %r3, %tid.x;
//!        mad.lo.u32 %r4, %r1, %r2, %r3;
//!        mad.wide.u32 %rd2, %r4, 4, %rd1;
//!        st.global.f32 [%rd2], 0f3F800000;
//!        ret;
//!      }",
//! )?);
//! let launch = Launch::new(kernel, Dim3::x(4), Dim3::x(64),
//!                          vec![ArgValue::Ptr(0x7f00_0000_0000)]);
//! let access = absint::analyze_launch(&launch);
//! assert!(!access.non_static);
//! assert_eq!(access.per_tb.len(), 4);
//! # Ok(())
//! # }
//! ```

pub mod absint;
pub mod access;
pub mod builder;
pub mod cancel;
pub mod cfg;
pub mod error;
pub mod interp;
pub mod interval;
pub mod isa;
pub mod kernel;
pub mod lexer;
pub mod mem;
pub mod par;
pub mod parser;
pub mod print;
pub mod taint;
pub mod trace;

pub use access::{KernelAccess, RangeSet, TbAccess};
pub use cancel::{CancelCause, CancelToken};
pub use error::PtxError;
pub use kernel::{ArgValue, Dim3, Kernel, Launch, Param};
pub use mem::{AddressSpace, AllocId, AllocInfo, GlobalMem};
pub use par::ParallelConfig;
