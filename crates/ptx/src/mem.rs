//! Flat device virtual-address space and functional global memory.
//!
//! Allocations (`cudaMalloc` equivalents) are carved out of a single 64-bit
//! address space with generous alignment, so launch-time analysis can work
//! with plain byte intervals and map any address back to its allocation.

use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a device allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AllocId(pub u32);

impl fmt::Display for AllocId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "alloc#{}", self.0)
    }
}

/// Metadata for one allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocInfo {
    /// The allocation id.
    pub id: AllocId,
    /// Base virtual address.
    pub base: u64,
    /// Size in bytes.
    pub size: u64,
}

impl AllocInfo {
    /// One-past-the-end address.
    pub fn end(&self) -> u64 {
        self.base + self.size
    }

    /// Whether `addr` falls inside the allocation.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.end()
    }
}

/// Bump allocator over the flat device address space.
///
/// The base address starts away from zero (as on real GPUs) and each
/// allocation is aligned to 256 bytes so that range analysis and coalescing
/// see realistic addresses.
#[derive(Debug, Clone)]
pub struct AddressSpace {
    allocs: Vec<AllocInfo>,
    next: u64,
}

/// Alignment of every allocation, matching CUDA's `cudaMalloc` guarantee.
pub const ALLOC_ALIGN: u64 = 256;
/// First device virtual address handed out.
pub const DEVICE_BASE: u64 = 0x7f00_0000_0000;

impl AddressSpace {
    /// An empty address space.
    pub fn new() -> Self {
        AddressSpace {
            allocs: Vec::new(),
            next: DEVICE_BASE,
        }
    }

    /// Reserves `size` bytes and returns the new allocation's metadata.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn alloc(&mut self, size: u64) -> AllocInfo {
        assert!(size > 0, "zero-sized device allocation");
        let base = self.next;
        let id = AllocId(self.allocs.len() as u32);
        let info = AllocInfo { id, base, size };
        self.allocs.push(info);
        self.next = (base + size).next_multiple_of(ALLOC_ALIGN);
        info
    }

    /// All allocations in creation order.
    pub fn allocs(&self) -> &[AllocInfo] {
        &self.allocs
    }

    /// Looks up an allocation by id.
    pub fn info(&self, id: AllocId) -> AllocInfo {
        self.allocs[id.0 as usize]
    }

    /// Finds the allocation containing `addr`, if any.
    pub fn find(&self, addr: u64) -> Option<AllocInfo> {
        let i = self.allocs.partition_point(|a| a.base <= addr);
        if i == 0 {
            return None;
        }
        let a = self.allocs[i - 1];
        a.contains(addr).then_some(a)
    }
}

impl Default for AddressSpace {
    fn default() -> Self {
        AddressSpace::new()
    }
}

/// Byte-addressable functional device memory backing the interpreter.
///
/// Backed by per-allocation byte vectors created lazily; reads of
/// never-written memory return zeroes (deterministic, like `cudaMemset` 0).
#[derive(Debug, Clone, Default)]
pub struct GlobalMem {
    pages: BTreeMap<u64, Vec<u8>>, // keyed by allocation base
    bases: Vec<(u64, u64)>,        // (base, size) sorted by base
}

impl GlobalMem {
    /// Creates memory with backing for every allocation in `space`.
    pub fn for_space(space: &AddressSpace) -> Self {
        let mut m = GlobalMem::default();
        for a in space.allocs() {
            m.add_region(a.base, a.size);
        }
        m
    }

    /// Registers a backing region (idempotent for the same base).
    pub fn add_region(&mut self, base: u64, size: u64) {
        self.pages
            .entry(base)
            .or_insert_with(|| vec![0; size as usize]);
        if let Err(i) = self.bases.binary_search_by_key(&base, |&(b, _)| b) {
            self.bases.insert(i, (base, size));
        }
    }

    fn locate(&self, addr: u64, len: u64) -> Option<(u64, usize)> {
        let i = self.bases.partition_point(|&(b, _)| b <= addr);
        if i == 0 {
            return None;
        }
        let (base, size) = self.bases[i - 1];
        (addr + len <= base + size).then(|| (base, (addr - base) as usize))
    }

    /// Reads a 32-bit little-endian word.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-bounds device address (a functional-model bug in
    /// the kernel under test — surfaced loudly on purpose).
    pub fn read_u32(&self, addr: u64) -> u32 {
        let (base, off) = self
            .locate(addr, 4)
            .unwrap_or_else(|| panic!("device read of unmapped address {addr:#x}"));
        let p = &self.pages[&base];
        u32::from_le_bytes(p[off..off + 4].try_into().unwrap())
    }

    /// Writes a 32-bit little-endian word.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-bounds device address.
    pub fn write_u32(&mut self, addr: u64, value: u32) {
        let (base, off) = self
            .locate(addr, 4)
            .unwrap_or_else(|| panic!("device write of unmapped address {addr:#x}"));
        let p = self.pages.get_mut(&base).unwrap();
        p[off..off + 4].copy_from_slice(&value.to_le_bytes());
    }

    /// Reads an `f32`.
    pub fn read_f32(&self, addr: u64) -> f32 {
        f32::from_bits(self.read_u32(addr))
    }

    /// Writes an `f32`.
    pub fn write_f32(&mut self, addr: u64, value: f32) {
        self.write_u32(addr, value.to_bits());
    }

    /// Copies a slice of `f32`s to device memory (host-to-device memcpy).
    pub fn copy_from_host_f32(&mut self, addr: u64, data: &[f32]) {
        for (i, v) in data.iter().enumerate() {
            self.write_f32(addr + 4 * i as u64, *v);
        }
    }

    /// Copies device memory into a vector of `f32`s (device-to-host memcpy).
    pub fn copy_to_host_f32(&self, addr: u64, count: usize) -> Vec<f32> {
        (0..count)
            .map(|i| self.read_f32(addr + 4 * i as u64))
            .collect()
    }

    /// A stable fingerprint of all memory contents, for equivalence tests.
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a over all regions in address order.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for (base, page) in &self.pages {
            for b in base.to_le_bytes().iter().chain(page.iter()) {
                h ^= *b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_aligned_and_disjoint() {
        let mut sp = AddressSpace::new();
        let a = sp.alloc(100);
        let b = sp.alloc(1000);
        assert_eq!(a.base % ALLOC_ALIGN, 0);
        assert_eq!(b.base % ALLOC_ALIGN, 0);
        assert!(a.end() <= b.base);
        assert_eq!(sp.find(a.base + 50), Some(a));
        assert_eq!(sp.find(b.base + 999), Some(b));
        assert_eq!(sp.find(b.end()), None);
        assert_eq!(sp.find(0), None);
        assert_eq!(sp.info(a.id), a);
    }

    #[test]
    fn mem_round_trip() {
        let mut sp = AddressSpace::new();
        let a = sp.alloc(64);
        let mut m = GlobalMem::for_space(&sp);
        m.write_f32(a.base + 8, 3.5);
        assert_eq!(m.read_f32(a.base + 8), 3.5);
        assert_eq!(m.read_f32(a.base), 0.0); // untouched memory reads zero
        m.write_u32(a.base + 60, u32::MAX);
        assert_eq!(m.read_u32(a.base + 60), u32::MAX);
    }

    #[test]
    #[should_panic(expected = "unmapped")]
    fn oob_read_panics() {
        let mut sp = AddressSpace::new();
        let a = sp.alloc(8);
        let m = GlobalMem::for_space(&sp);
        m.read_u32(a.base + 6); // crosses the end
    }

    #[test]
    fn host_copies() {
        let mut sp = AddressSpace::new();
        let a = sp.alloc(16);
        let mut m = GlobalMem::for_space(&sp);
        m.copy_from_host_f32(a.base, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.copy_to_host_f32(a.base, 4), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn fingerprint_changes_with_contents() {
        let mut sp = AddressSpace::new();
        let a = sp.alloc(16);
        let mut m = GlobalMem::for_space(&sp);
        let f0 = m.fingerprint();
        m.write_u32(a.base, 1);
        assert_ne!(m.fingerprint(), f0);
    }
}
