//! Flat device virtual-address space and functional global memory.
//!
//! Allocations (`cudaMalloc` equivalents) are carved out of a single 64-bit
//! address space with generous alignment, so launch-time analysis can work
//! with plain byte intervals and map any address back to its allocation.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Identifier of a device allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AllocId(pub u32);

impl fmt::Display for AllocId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "alloc#{}", self.0)
    }
}

/// Metadata for one allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocInfo {
    /// The allocation id.
    pub id: AllocId,
    /// Base virtual address.
    pub base: u64,
    /// Size in bytes.
    pub size: u64,
}

impl AllocInfo {
    /// One-past-the-end address.
    pub fn end(&self) -> u64 {
        self.base + self.size
    }

    /// Whether `addr` falls inside the allocation.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.end()
    }
}

/// Bump allocator over the flat device address space.
///
/// The base address starts away from zero (as on real GPUs) and each
/// allocation is aligned to 256 bytes so that range analysis and coalescing
/// see realistic addresses.
#[derive(Debug, Clone)]
pub struct AddressSpace {
    allocs: Vec<AllocInfo>,
    next: u64,
}

/// Alignment of every allocation, matching CUDA's `cudaMalloc` guarantee.
pub const ALLOC_ALIGN: u64 = 256;
/// First device virtual address handed out.
pub const DEVICE_BASE: u64 = 0x7f00_0000_0000;

impl AddressSpace {
    /// An empty address space.
    pub fn new() -> Self {
        AddressSpace {
            allocs: Vec::new(),
            next: DEVICE_BASE,
        }
    }

    /// Reserves `size` bytes and returns the new allocation's metadata.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn alloc(&mut self, size: u64) -> AllocInfo {
        assert!(size > 0, "zero-sized device allocation");
        let base = self.next;
        let id = AllocId(self.allocs.len() as u32);
        let info = AllocInfo { id, base, size };
        self.allocs.push(info);
        self.next = (base + size).next_multiple_of(ALLOC_ALIGN);
        info
    }

    /// All allocations in creation order.
    pub fn allocs(&self) -> &[AllocInfo] {
        &self.allocs
    }

    /// Looks up an allocation by id.
    pub fn info(&self, id: AllocId) -> AllocInfo {
        self.allocs[id.0 as usize]
    }

    /// Finds the allocation containing `addr`, if any.
    pub fn find(&self, addr: u64) -> Option<AllocInfo> {
        let i = self.allocs.partition_point(|a| a.base <= addr);
        if i == 0 {
            return None;
        }
        let a = self.allocs[i - 1];
        a.contains(addr).then_some(a)
    }
}

impl Default for AddressSpace {
    fn default() -> Self {
        AddressSpace::new()
    }
}

/// Copy-on-write granule of a backing region. 4 KiB balances clone cost
/// (one `Arc` pointer per chunk) against the bytes duplicated by the first
/// write into a shared chunk: the lane-law trace path hands every warp a
/// private clone that typically writes a few dozen bytes, so large granules
/// turn each of those writes into a large memcpy (at 64 KiB, the trace
/// phase duplicated ~8x more bytes than it read).
pub const COW_CHUNK_BYTES: usize = 1 << 12;

/// Byte-addressable functional device memory backing the interpreter.
///
/// Backed by per-allocation chunk lists created lazily; reads of
/// never-written memory return zeroes (deterministic, like `cudaMemset` 0).
///
/// Chunks are reference-counted and shared between clones, so `clone()` is
/// a pointer copy per chunk rather than a deep copy of device memory: the
/// parallel analysis pipeline hands every worker a private scratch clone,
/// and only chunks a worker actually writes are duplicated (copy-on-write).
/// All clones of one memory share a byte counter of those duplications,
/// observable via [`GlobalMem::cow_copied_bytes`].
#[derive(Debug, Clone, Default)]
pub struct GlobalMem {
    pages: BTreeMap<u64, Vec<Arc<Vec<u8>>>>, // keyed by allocation base
    bases: Vec<(u64, u64)>,                  // (base, size) sorted by base
    copied: Arc<AtomicU64>,                  // CoW bytes, shared by all clones
}

/// Unique access to one chunk, duplicating it first when it is shared with
/// another clone (and charging the duplication to the family counter).
fn chunk_mut<'c>(copied: &AtomicU64, chunk: &'c mut Arc<Vec<u8>>) -> &'c mut Vec<u8> {
    if Arc::get_mut(chunk).is_none() {
        copied.fetch_add(chunk.len() as u64, Ordering::Relaxed);
        *chunk = Arc::new(chunk.as_ref().clone());
    }
    Arc::get_mut(chunk).expect("chunk just made unique")
}

/// The chunk list backing a `size`-byte region: full chunks share one
/// zeroed block (copied lazily on first write), the tail is exact-length so
/// concatenating chunk bytes reproduces the region byte-for-byte.
fn zero_chunks(size: u64) -> Vec<Arc<Vec<u8>>> {
    let full = size as usize / COW_CHUNK_BYTES;
    let tail = size as usize % COW_CHUNK_BYTES;
    let mut chunks = Vec::with_capacity(full + usize::from(tail > 0));
    if full > 0 {
        let zero = Arc::new(vec![0u8; COW_CHUNK_BYTES]);
        chunks.extend(std::iter::repeat_with(|| zero.clone()).take(full));
    }
    if tail > 0 {
        chunks.push(Arc::new(vec![0u8; tail]));
    }
    chunks
}

impl GlobalMem {
    /// Creates memory with backing for every allocation in `space`.
    pub fn for_space(space: &AddressSpace) -> Self {
        let mut m = GlobalMem::default();
        for a in space.allocs() {
            m.add_region(a.base, a.size);
        }
        m
    }

    /// Registers a backing region (idempotent for the same base).
    pub fn add_region(&mut self, base: u64, size: u64) {
        self.pages.entry(base).or_insert_with(|| zero_chunks(size));
        if let Err(i) = self.bases.binary_search_by_key(&base, |&(b, _)| b) {
            self.bases.insert(i, (base, size));
        }
    }

    fn locate(&self, addr: u64, len: u64) -> Option<(u64, usize)> {
        let i = self.bases.partition_point(|&(b, _)| b <= addr);
        if i == 0 {
            return None;
        }
        let (base, size) = self.bases[i - 1];
        (addr + len <= base + size).then(|| (base, (addr - base) as usize))
    }

    /// Bytes duplicated by copy-on-write across all clones sharing this
    /// memory's lineage — the real cost of handing workers scratch clones.
    pub fn cow_copied_bytes(&self) -> u64 {
        self.copied.load(Ordering::Relaxed)
    }

    /// Reads a 32-bit little-endian word.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-bounds device address (a functional-model bug in
    /// the kernel under test — surfaced loudly on purpose).
    pub fn read_u32(&self, addr: u64) -> u32 {
        let (base, off) = self
            .locate(addr, 4)
            .unwrap_or_else(|| panic!("device read of unmapped address {addr:#x}"));
        let chunks = &self.pages[&base];
        let (ci, co) = (off / COW_CHUNK_BYTES, off % COW_CHUNK_BYTES);
        if co + 4 <= chunks[ci].len() {
            u32::from_le_bytes(chunks[ci][co..co + 4].try_into().unwrap())
        } else {
            // The word straddles a chunk boundary: gather byte-wise.
            let mut bytes = [0u8; 4];
            for (i, b) in bytes.iter_mut().enumerate() {
                let o = off + i;
                *b = chunks[o / COW_CHUNK_BYTES][o % COW_CHUNK_BYTES];
            }
            u32::from_le_bytes(bytes)
        }
    }

    /// Writes a 32-bit little-endian word.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-bounds device address.
    pub fn write_u32(&mut self, addr: u64, value: u32) {
        let (base, off) = self
            .locate(addr, 4)
            .unwrap_or_else(|| panic!("device write of unmapped address {addr:#x}"));
        let chunks = self.pages.get_mut(&base).unwrap();
        let (ci, co) = (off / COW_CHUNK_BYTES, off % COW_CHUNK_BYTES);
        if co + 4 <= chunks[ci].len() {
            let c = chunk_mut(&self.copied, &mut chunks[ci]);
            c[co..co + 4].copy_from_slice(&value.to_le_bytes());
        } else {
            for (i, b) in value.to_le_bytes().into_iter().enumerate() {
                let o = off + i;
                let c = chunk_mut(&self.copied, &mut chunks[o / COW_CHUNK_BYTES]);
                c[o % COW_CHUNK_BYTES] = b;
            }
        }
    }

    /// Reads an `f32`.
    pub fn read_f32(&self, addr: u64) -> f32 {
        f32::from_bits(self.read_u32(addr))
    }

    /// Writes an `f32`.
    pub fn write_f32(&mut self, addr: u64, value: f32) {
        self.write_u32(addr, value.to_bits());
    }

    /// Copies a slice of `f32`s to device memory (host-to-device memcpy).
    ///
    /// Locates the destination region once and writes chunk-contiguous
    /// spans, so large host copies (the dominant cost of building analysis
    /// scratch memory) avoid a per-word address search.
    pub fn copy_from_host_f32(&mut self, addr: u64, data: &[f32]) {
        if data.is_empty() {
            return;
        }
        let (base, start) = self
            .locate(addr, 4 * data.len() as u64)
            .unwrap_or_else(|| panic!("device write of unmapped address {addr:#x}"));
        let chunks = self.pages.get_mut(&base).unwrap();
        let mut off = start;
        let mut words = data.iter();
        'outer: while let Some(first) = words.next() {
            let (ci, co) = (off / COW_CHUNK_BYTES, off % COW_CHUNK_BYTES);
            let c = chunk_mut(&self.copied, &mut chunks[ci]);
            if co + 4 > c.len() {
                // Word straddles the chunk boundary: byte-wise slow path.
                for (i, b) in first.to_bits().to_le_bytes().into_iter().enumerate() {
                    let o = off + i;
                    let cc = chunk_mut(&self.copied, &mut chunks[o / COW_CHUNK_BYTES]);
                    cc[o % COW_CHUNK_BYTES] = b;
                }
                off += 4;
                continue;
            }
            // Fill as much of this chunk as the remaining words allow.
            c[co..co + 4].copy_from_slice(&first.to_bits().to_le_bytes());
            off += 4;
            let mut co = co + 4;
            while co + 4 <= c.len() {
                match words.next() {
                    Some(v) => {
                        c[co..co + 4].copy_from_slice(&v.to_bits().to_le_bytes());
                        co += 4;
                        off += 4;
                    }
                    None => break 'outer,
                }
            }
        }
    }

    /// Copies device memory into a vector of `f32`s (device-to-host memcpy).
    pub fn copy_to_host_f32(&self, addr: u64, count: usize) -> Vec<f32> {
        (0..count)
            .map(|i| self.read_f32(addr + 4 * i as u64))
            .collect()
    }

    /// A stable fingerprint of all memory contents, for equivalence tests.
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a over all regions in address order; chunk boundaries are
        // invisible (the hashed byte stream is base bytes then region bytes).
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for (base, chunks) in &self.pages {
            let bytes = base
                .to_le_bytes()
                .into_iter()
                .chain(chunks.iter().flat_map(|c| c.iter().copied()));
            for b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_aligned_and_disjoint() {
        let mut sp = AddressSpace::new();
        let a = sp.alloc(100);
        let b = sp.alloc(1000);
        assert_eq!(a.base % ALLOC_ALIGN, 0);
        assert_eq!(b.base % ALLOC_ALIGN, 0);
        assert!(a.end() <= b.base);
        assert_eq!(sp.find(a.base + 50), Some(a));
        assert_eq!(sp.find(b.base + 999), Some(b));
        assert_eq!(sp.find(b.end()), None);
        assert_eq!(sp.find(0), None);
        assert_eq!(sp.info(a.id), a);
    }

    #[test]
    fn mem_round_trip() {
        let mut sp = AddressSpace::new();
        let a = sp.alloc(64);
        let mut m = GlobalMem::for_space(&sp);
        m.write_f32(a.base + 8, 3.5);
        assert_eq!(m.read_f32(a.base + 8), 3.5);
        assert_eq!(m.read_f32(a.base), 0.0); // untouched memory reads zero
        m.write_u32(a.base + 60, u32::MAX);
        assert_eq!(m.read_u32(a.base + 60), u32::MAX);
    }

    #[test]
    #[should_panic(expected = "unmapped")]
    fn oob_read_panics() {
        let mut sp = AddressSpace::new();
        let a = sp.alloc(8);
        let m = GlobalMem::for_space(&sp);
        m.read_u32(a.base + 6); // crosses the end
    }

    #[test]
    fn host_copies() {
        let mut sp = AddressSpace::new();
        let a = sp.alloc(16);
        let mut m = GlobalMem::for_space(&sp);
        m.copy_from_host_f32(a.base, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.copy_to_host_f32(a.base, 4), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn fingerprint_changes_with_contents() {
        let mut sp = AddressSpace::new();
        let a = sp.alloc(16);
        let mut m = GlobalMem::for_space(&sp);
        let f0 = m.fingerprint();
        m.write_u32(a.base, 1);
        assert_ne!(m.fingerprint(), f0);
    }

    #[test]
    fn chunk_boundary_round_trip() {
        let mut sp = AddressSpace::new();
        let a = sp.alloc(2 * COW_CHUNK_BYTES as u64 + 10);
        let mut m = GlobalMem::for_space(&sp);
        // A word straddling the first chunk boundary.
        let straddle = a.base + COW_CHUNK_BYTES as u64 - 2;
        m.write_u32(straddle, 0xDEAD_BEEF);
        assert_eq!(m.read_u32(straddle), 0xDEAD_BEEF);
        // Last word of the short tail chunk.
        m.write_u32(a.base + 2 * COW_CHUNK_BYTES as u64 + 6, 7);
        assert_eq!(m.read_u32(a.base + 2 * COW_CHUNK_BYTES as u64 + 6), 7);
        // Neighbors on both sides of the straddle stay intact.
        assert_eq!(m.read_u32(straddle - 4), 0);
        assert_eq!(m.read_u32(straddle + 4), 0);
    }

    #[test]
    fn clone_is_copy_on_write() {
        let mut sp = AddressSpace::new();
        let a = sp.alloc(4 * COW_CHUNK_BYTES as u64);
        let mut m = GlobalMem::for_space(&sp);
        m.copy_from_host_f32(a.base, &vec![1.5f32; COW_CHUNK_BYTES / 4]);
        let before = m.cow_copied_bytes();
        let mut clone = m.clone();
        // Cloning itself duplicates nothing.
        assert_eq!(clone.cow_copied_bytes(), before);
        // Writing one word in the clone duplicates exactly one chunk, and
        // the original is unaffected.
        clone.write_f32(a.base, 9.0);
        assert_eq!(clone.cow_copied_bytes(), before + COW_CHUNK_BYTES as u64);
        assert_eq!(clone.read_f32(a.base), 9.0);
        assert_eq!(m.read_f32(a.base), 1.5);
        // The counter is shared across the lineage.
        assert_eq!(m.cow_copied_bytes(), clone.cow_copied_bytes());
    }

    #[test]
    fn bulk_host_copy_matches_word_writes() {
        let mut sp = AddressSpace::new();
        let n = COW_CHUNK_BYTES / 4 + 37;
        let a = sp.alloc(4 * n as u64 + 8);
        let data: Vec<f32> = (0..n).map(|i| i as f32 * 0.5).collect();
        let mut bulk = GlobalMem::for_space(&sp);
        bulk.copy_from_host_f32(a.base + 8, &data);
        let mut word = GlobalMem::for_space(&sp);
        for (i, v) in data.iter().enumerate() {
            word.write_f32(a.base + 8 + 4 * i as u64, *v);
        }
        assert_eq!(bulk.fingerprint(), word.fingerprint());
        assert_eq!(bulk.copy_to_host_f32(a.base + 8, n), data);
    }
}
