//! Byte-address range sets describing what a thread block reads and writes.
//!
//! Ranges are half-open `[start, end)` byte intervals in the flat device
//! address space, kept sorted and coalesced. These are the "read and write
//! sets per TB" of the paper's value-range analysis (§III-B2).

use std::fmt;

/// A sorted, coalesced set of half-open byte ranges `[start, end)`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct RangeSet {
    ranges: Vec<(u64, u64)>,
}

impl RangeSet {
    /// The empty set.
    pub fn new() -> Self {
        RangeSet::default()
    }

    /// A set with a single range `[start, end)`. Empty if `start >= end`.
    pub fn single(start: u64, end: u64) -> Self {
        let mut s = RangeSet::new();
        s.insert(start, end);
        s
    }

    /// Builds a set from an arbitrary list of ranges in one
    /// `O(k log k)` sort + linear coalescing pass — the bulk-union
    /// counterpart of repeated [`RangeSet::insert`], which costs
    /// `O(k)` per call against an already-large set.
    pub fn from_unsorted(mut ranges: Vec<(u64, u64)>) -> Self {
        ranges.retain(|&(s, e)| s < e);
        ranges.sort_unstable();
        let mut out: Vec<(u64, u64)> = Vec::with_capacity(ranges.len());
        for (s, e) in ranges {
            match out.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => out.push((s, e)),
            }
        }
        RangeSet { ranges: out }
    }

    /// Whether the set contains no bytes.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Number of maximal disjoint ranges.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// The ranges, sorted and disjoint.
    pub fn ranges(&self) -> &[(u64, u64)] {
        &self.ranges
    }

    /// Total number of bytes covered.
    pub fn total_bytes(&self) -> u64 {
        self.ranges.iter().map(|(s, e)| e - s).sum()
    }

    /// Smallest range covering the whole set, if non-empty.
    pub fn bounds(&self) -> Option<(u64, u64)> {
        if self.ranges.is_empty() {
            None
        } else {
            Some((self.ranges[0].0, self.ranges.last().unwrap().1))
        }
    }

    /// Inserts `[start, end)`, merging with touching/overlapping ranges.
    pub fn insert(&mut self, start: u64, end: u64) {
        if start >= end {
            return;
        }
        // Find insertion window: all ranges with r.start <= end and
        // r.end >= start merge with the new range.
        let lo = self.ranges.partition_point(|&(_, e)| e < start);
        let hi = self.ranges.partition_point(|&(s, _)| s <= end);
        if lo == hi {
            self.ranges.insert(lo, (start, end));
        } else {
            let new_start = start.min(self.ranges[lo].0);
            let new_end = end.max(self.ranges[hi - 1].1);
            self.ranges.drain(lo..hi);
            self.ranges.insert(lo, (new_start, new_end));
        }
    }

    /// Unions another set into this one.
    pub fn union_with(&mut self, other: &RangeSet) {
        for &(s, e) in &other.ranges {
            self.insert(s, e);
        }
    }

    /// Whether any byte is shared with `other`.
    ///
    /// Hot in dependency-graph construction: screened first by the overall
    /// bounds, then resolved by a binary-search merge when one side is much
    /// smaller than the other (each small range locates its overlap
    /// candidate in `O(log n)`), falling back to the linear two-pointer
    /// sweep for comparably-sized sets.
    pub fn intersects(&self, other: &RangeSet) -> bool {
        let (n, m) = (self.ranges.len(), other.ranges.len());
        if n == 0 || m == 0 {
            return false;
        }
        // Bounds screen: disjoint hulls cannot share a byte.
        if self.ranges[0].0 >= other.ranges[m - 1].1 || other.ranges[0].0 >= self.ranges[n - 1].1 {
            return false;
        }
        // Galloping path: probe each range of the smaller set into the
        // larger one when the size disparity makes log(m) probes cheaper
        // than the m-step sweep.
        const GALLOP_FACTOR: usize = 16;
        if n * GALLOP_FACTOR < m {
            return Self::gallop_intersects(&self.ranges, &other.ranges);
        }
        if m * GALLOP_FACTOR < n {
            return Self::gallop_intersects(&other.ranges, &self.ranges);
        }
        let (mut i, mut j) = (0, 0);
        while i < n && j < m {
            let (s1, e1) = self.ranges[i];
            let (s2, e2) = other.ranges[j];
            if s1 < e2 && s2 < e1 {
                return true;
            }
            if e1 <= e2 {
                i += 1;
            } else {
                j += 1;
            }
        }
        false
    }

    /// For each range of `small`, binary-search the first range of `big`
    /// ending after its start and test that one candidate for overlap.
    fn gallop_intersects(small: &[(u64, u64)], big: &[(u64, u64)]) -> bool {
        for &(s, e) in small {
            let i = big.partition_point(|&(_, be)| be <= s);
            if i < big.len() && big[i].0 < e {
                return true;
            }
        }
        false
    }

    /// Whether every byte of `self` is also in `other`. Because both sets
    /// are canonical (sorted, disjoint, coalesced), each range of `self`
    /// must lie inside a *single* range of `other`.
    pub fn is_subset_of(&self, other: &RangeSet) -> bool {
        let mut j = 0usize;
        for &(s, e) in &self.ranges {
            while j < other.ranges.len() && other.ranges[j].1 < e {
                j += 1;
            }
            match other.ranges.get(j) {
                Some(&(os, oe)) if os <= s && e <= oe => {}
                _ => return false,
            }
        }
        true
    }

    /// The intersection with another set.
    pub fn intersection(&self, other: &RangeSet) -> RangeSet {
        let mut out = RangeSet::new();
        let (mut i, mut j) = (0, 0);
        while i < self.ranges.len() && j < other.ranges.len() {
            let (s1, e1) = self.ranges[i];
            let (s2, e2) = other.ranges[j];
            let s = s1.max(s2);
            let e = e1.min(e2);
            if s < e {
                out.insert(s, e);
            }
            if e1 <= e2 {
                i += 1;
            } else {
                j += 1;
            }
        }
        out
    }

    /// Whether `addr` is covered.
    pub fn contains(&self, addr: u64) -> bool {
        let i = self.ranges.partition_point(|&(_, e)| e <= addr);
        i < self.ranges.len() && self.ranges[i].0 <= addr
    }
}

impl FromIterator<(u64, u64)> for RangeSet {
    fn from_iter<T: IntoIterator<Item = (u64, u64)>>(iter: T) -> Self {
        let mut s = RangeSet::new();
        for (a, b) in iter {
            s.insert(a, b);
        }
        s
    }
}

impl Extend<(u64, u64)> for RangeSet {
    fn extend<T: IntoIterator<Item = (u64, u64)>>(&mut self, iter: T) {
        for (a, b) in iter {
            self.insert(a, b);
        }
    }
}

impl fmt::Display for RangeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (s, e)) in self.ranges.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "[{s:#x}, {e:#x})")?;
        }
        write!(f, "}}")
    }
}

/// The read and write sets of one thread block.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TbAccess {
    /// Global-memory bytes the block may read.
    pub reads: RangeSet,
    /// Global-memory bytes the block may write.
    pub writes: RangeSet,
}

/// Result of launch-time analysis for one kernel launch: per-TB access sets
/// plus kernel-level unions, or the conservative "non-static" verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelAccess {
    /// Per-thread-block access sets, indexed by linear block id.
    pub per_tb: Vec<TbAccess>,
    /// Union of all TB read sets.
    pub kernel_reads: RangeSet,
    /// Union of all TB write sets.
    pub kernel_writes: RangeSet,
    /// Set when Algorithm 1 bails out (address derived from a loaded value):
    /// the kernel must be treated as fully dependent on its predecessor.
    pub non_static: bool,
}

impl KernelAccess {
    /// Builds the kernel-level unions from per-TB sets.
    ///
    /// The unions are built by one pre-sized sort-and-coalesce pass over
    /// all per-TB ranges ([`RangeSet::from_unsorted`]) rather than
    /// per-range insertion, which is quadratic when thousands of TB
    /// ranges land in a large union.
    pub fn from_per_tb(per_tb: Vec<TbAccess>, non_static: bool) -> Self {
        let n_reads: usize = per_tb.iter().map(|t| t.reads.len()).sum();
        let n_writes: usize = per_tb.iter().map(|t| t.writes.len()).sum();
        let mut all_reads = Vec::with_capacity(n_reads);
        let mut all_writes = Vec::with_capacity(n_writes);
        for tb in &per_tb {
            all_reads.extend_from_slice(tb.reads.ranges());
            all_writes.extend_from_slice(tb.writes.ranges());
        }
        KernelAccess {
            per_tb,
            kernel_reads: RangeSet::from_unsorted(all_reads),
            kernel_writes: RangeSet::from_unsorted(all_writes),
            non_static,
        }
    }

    /// Number of thread blocks analyzed.
    pub fn num_blocks(&self) -> usize {
        self.per_tb.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_merges_overlaps_and_touching() {
        let mut s = RangeSet::new();
        s.insert(10, 20);
        s.insert(30, 40);
        assert_eq!(s.len(), 2);
        s.insert(20, 30); // touches both
        assert_eq!(s.ranges(), &[(10, 40)]);
        s.insert(5, 12);
        assert_eq!(s.ranges(), &[(5, 40)]);
        s.insert(100, 100); // empty no-op
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn insert_keeps_disjoint_sorted() {
        let mut s = RangeSet::new();
        for (a, b) in [(50u64, 60u64), (10, 20), (30, 40), (0, 5)] {
            s.insert(a, b);
        }
        assert_eq!(s.ranges(), &[(0, 5), (10, 20), (30, 40), (50, 60)]);
        assert_eq!(s.total_bytes(), 5 + 10 + 10 + 10);
        assert_eq!(s.bounds(), Some((0, 60)));
    }

    #[test]
    fn intersection_and_intersects_agree() {
        let a: RangeSet = [(0u64, 10u64), (20, 30)].into_iter().collect();
        let b: RangeSet = [(5u64, 25u64)].into_iter().collect();
        assert!(a.intersects(&b));
        let i = a.intersection(&b);
        assert_eq!(i.ranges(), &[(5, 10), (20, 25)]);
        let c: RangeSet = [(10u64, 20u64)].into_iter().collect();
        assert!(!a.intersects(&c));
        assert!(a.intersection(&c).is_empty());
    }

    #[test]
    fn contains_points() {
        let s: RangeSet = [(10u64, 20u64), (30, 40)].into_iter().collect();
        assert!(s.contains(10));
        assert!(s.contains(19));
        assert!(!s.contains(20));
        assert!(!s.contains(25));
        assert!(s.contains(39));
        assert!(!s.contains(9));
    }

    #[test]
    fn from_unsorted_matches_insertion() {
        let cases: Vec<Vec<(u64, u64)>> = vec![
            vec![],
            vec![(5, 5)],
            vec![(10, 20), (30, 40), (20, 30)],
            vec![(50, 60), (10, 20), (0, 5), (12, 55), (60, 60)],
            vec![(0, 1), (2, 3), (4, 5), (1, 2)],
        ];
        for ranges in cases {
            let mut by_insert = RangeSet::new();
            for &(s, e) in &ranges {
                by_insert.insert(s, e);
            }
            let bulk = RangeSet::from_unsorted(ranges.clone());
            assert_eq!(bulk, by_insert, "for {ranges:?}");
        }
    }

    #[test]
    fn gallop_intersects_matches_sweep() {
        // A large set vs a small one exercises the galloping path in both
        // argument orders; a same-size pair exercises the sweep.
        let big: RangeSet = (0..200u64).map(|i| (10 * i, 10 * i + 4)).collect();
        for (small_ranges, want) in [
            (vec![(1995u64, 1999u64)], false), // gap between [1990,1994) and [2000,..)
            (vec![(1992, 1996)], true),
            (vec![(5, 8), (7000, 7001)], false),
            (vec![(5, 11)], true),
        ] {
            let small: RangeSet = small_ranges.iter().copied().collect();
            assert_eq!(small.intersects(&big), want, "{small_ranges:?}");
            assert_eq!(big.intersects(&small), want, "{small_ranges:?} flipped");
        }
        let other: RangeSet = (0..200u64).map(|i| (10 * i + 4, 10 * i + 10)).collect();
        assert!(!big.intersects(&other));
        assert!(big.intersects(&RangeSet::single(0, 1)));
        assert!(!big.intersects(&RangeSet::new()));
    }

    #[test]
    fn subset_relation() {
        let a: RangeSet = [(10u64, 20u64), (30, 40)].into_iter().collect();
        let hull: RangeSet = [(0u64, 50u64)].into_iter().collect();
        assert!(a.is_subset_of(&hull));
        assert!(a.is_subset_of(&a));
        assert!(!hull.is_subset_of(&a));
        assert!(RangeSet::new().is_subset_of(&a));
        assert!(!RangeSet::single(15, 35).is_subset_of(&a), "gap 20..30");
        assert!(!RangeSet::single(39, 41).is_subset_of(&a));
        let exact: RangeSet = [(10u64, 20u64)].into_iter().collect();
        assert!(exact.is_subset_of(&a));
    }

    #[test]
    fn kernel_access_unions() {
        let per_tb = vec![
            TbAccess {
                reads: RangeSet::single(0, 8),
                writes: RangeSet::single(100, 108),
            },
            TbAccess {
                reads: RangeSet::single(8, 16),
                writes: RangeSet::single(108, 116),
            },
        ];
        let ka = KernelAccess::from_per_tb(per_tb, false);
        assert_eq!(ka.kernel_reads.ranges(), &[(0, 16)]);
        assert_eq!(ka.kernel_writes.ranges(), &[(100, 116)]);
        assert_eq!(ka.num_blocks(), 2);
        assert!(!ka.non_static);
    }
}
