//! Byte-address range sets describing what a thread block reads and writes.
//!
//! Ranges are half-open `[start, end)` byte intervals in the flat device
//! address space, kept sorted and coalesced. These are the "read and write
//! sets per TB" of the paper's value-range analysis (§III-B2).

use std::fmt;

/// A sorted, coalesced set of half-open byte ranges `[start, end)`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct RangeSet {
    ranges: Vec<(u64, u64)>,
}

impl RangeSet {
    /// The empty set.
    pub fn new() -> Self {
        RangeSet::default()
    }

    /// A set with a single range `[start, end)`. Empty if `start >= end`.
    pub fn single(start: u64, end: u64) -> Self {
        let mut s = RangeSet::new();
        s.insert(start, end);
        s
    }

    /// Whether the set contains no bytes.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Number of maximal disjoint ranges.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// The ranges, sorted and disjoint.
    pub fn ranges(&self) -> &[(u64, u64)] {
        &self.ranges
    }

    /// Total number of bytes covered.
    pub fn total_bytes(&self) -> u64 {
        self.ranges.iter().map(|(s, e)| e - s).sum()
    }

    /// Smallest range covering the whole set, if non-empty.
    pub fn bounds(&self) -> Option<(u64, u64)> {
        if self.ranges.is_empty() {
            None
        } else {
            Some((self.ranges[0].0, self.ranges.last().unwrap().1))
        }
    }

    /// Inserts `[start, end)`, merging with touching/overlapping ranges.
    pub fn insert(&mut self, start: u64, end: u64) {
        if start >= end {
            return;
        }
        // Find insertion window: all ranges with r.start <= end and
        // r.end >= start merge with the new range.
        let lo = self.ranges.partition_point(|&(_, e)| e < start);
        let hi = self.ranges.partition_point(|&(s, _)| s <= end);
        if lo == hi {
            self.ranges.insert(lo, (start, end));
        } else {
            let new_start = start.min(self.ranges[lo].0);
            let new_end = end.max(self.ranges[hi - 1].1);
            self.ranges.drain(lo..hi);
            self.ranges.insert(lo, (new_start, new_end));
        }
    }

    /// Unions another set into this one.
    pub fn union_with(&mut self, other: &RangeSet) {
        for &(s, e) in &other.ranges {
            self.insert(s, e);
        }
    }

    /// Whether any byte is shared with `other`.
    pub fn intersects(&self, other: &RangeSet) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.ranges.len() && j < other.ranges.len() {
            let (s1, e1) = self.ranges[i];
            let (s2, e2) = other.ranges[j];
            if s1 < e2 && s2 < e1 {
                return true;
            }
            if e1 <= e2 {
                i += 1;
            } else {
                j += 1;
            }
        }
        false
    }

    /// The intersection with another set.
    pub fn intersection(&self, other: &RangeSet) -> RangeSet {
        let mut out = RangeSet::new();
        let (mut i, mut j) = (0, 0);
        while i < self.ranges.len() && j < other.ranges.len() {
            let (s1, e1) = self.ranges[i];
            let (s2, e2) = other.ranges[j];
            let s = s1.max(s2);
            let e = e1.min(e2);
            if s < e {
                out.insert(s, e);
            }
            if e1 <= e2 {
                i += 1;
            } else {
                j += 1;
            }
        }
        out
    }

    /// Whether `addr` is covered.
    pub fn contains(&self, addr: u64) -> bool {
        let i = self.ranges.partition_point(|&(_, e)| e <= addr);
        i < self.ranges.len() && self.ranges[i].0 <= addr
    }
}

impl FromIterator<(u64, u64)> for RangeSet {
    fn from_iter<T: IntoIterator<Item = (u64, u64)>>(iter: T) -> Self {
        let mut s = RangeSet::new();
        for (a, b) in iter {
            s.insert(a, b);
        }
        s
    }
}

impl Extend<(u64, u64)> for RangeSet {
    fn extend<T: IntoIterator<Item = (u64, u64)>>(&mut self, iter: T) {
        for (a, b) in iter {
            self.insert(a, b);
        }
    }
}

impl fmt::Display for RangeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (s, e)) in self.ranges.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "[{s:#x}, {e:#x})")?;
        }
        write!(f, "}}")
    }
}

/// The read and write sets of one thread block.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TbAccess {
    /// Global-memory bytes the block may read.
    pub reads: RangeSet,
    /// Global-memory bytes the block may write.
    pub writes: RangeSet,
}

/// Result of launch-time analysis for one kernel launch: per-TB access sets
/// plus kernel-level unions, or the conservative "non-static" verdict.
#[derive(Debug, Clone)]
pub struct KernelAccess {
    /// Per-thread-block access sets, indexed by linear block id.
    pub per_tb: Vec<TbAccess>,
    /// Union of all TB read sets.
    pub kernel_reads: RangeSet,
    /// Union of all TB write sets.
    pub kernel_writes: RangeSet,
    /// Set when Algorithm 1 bails out (address derived from a loaded value):
    /// the kernel must be treated as fully dependent on its predecessor.
    pub non_static: bool,
}

impl KernelAccess {
    /// Builds the kernel-level unions from per-TB sets.
    pub fn from_per_tb(per_tb: Vec<TbAccess>, non_static: bool) -> Self {
        let mut kernel_reads = RangeSet::new();
        let mut kernel_writes = RangeSet::new();
        for tb in &per_tb {
            kernel_reads.union_with(&tb.reads);
            kernel_writes.union_with(&tb.writes);
        }
        KernelAccess {
            per_tb,
            kernel_reads,
            kernel_writes,
            non_static,
        }
    }

    /// Number of thread blocks analyzed.
    pub fn num_blocks(&self) -> usize {
        self.per_tb.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_merges_overlaps_and_touching() {
        let mut s = RangeSet::new();
        s.insert(10, 20);
        s.insert(30, 40);
        assert_eq!(s.len(), 2);
        s.insert(20, 30); // touches both
        assert_eq!(s.ranges(), &[(10, 40)]);
        s.insert(5, 12);
        assert_eq!(s.ranges(), &[(5, 40)]);
        s.insert(100, 100); // empty no-op
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn insert_keeps_disjoint_sorted() {
        let mut s = RangeSet::new();
        for (a, b) in [(50u64, 60u64), (10, 20), (30, 40), (0, 5)] {
            s.insert(a, b);
        }
        assert_eq!(s.ranges(), &[(0, 5), (10, 20), (30, 40), (50, 60)]);
        assert_eq!(s.total_bytes(), 5 + 10 + 10 + 10);
        assert_eq!(s.bounds(), Some((0, 60)));
    }

    #[test]
    fn intersection_and_intersects_agree() {
        let a: RangeSet = [(0u64, 10u64), (20, 30)].into_iter().collect();
        let b: RangeSet = [(5u64, 25u64)].into_iter().collect();
        assert!(a.intersects(&b));
        let i = a.intersection(&b);
        assert_eq!(i.ranges(), &[(5, 10), (20, 25)]);
        let c: RangeSet = [(10u64, 20u64)].into_iter().collect();
        assert!(!a.intersects(&c));
        assert!(a.intersection(&c).is_empty());
    }

    #[test]
    fn contains_points() {
        let s: RangeSet = [(10u64, 20u64), (30, 40)].into_iter().collect();
        assert!(s.contains(10));
        assert!(s.contains(19));
        assert!(!s.contains(20));
        assert!(!s.contains(25));
        assert!(s.contains(39));
        assert!(!s.contains(9));
    }

    #[test]
    fn kernel_access_unions() {
        let per_tb = vec![
            TbAccess {
                reads: RangeSet::single(0, 8),
                writes: RangeSet::single(100, 108),
            },
            TbAccess {
                reads: RangeSet::single(8, 16),
                writes: RangeSet::single(108, 116),
            },
        ];
        let ka = KernelAccess::from_per_tb(per_tb, false);
        assert_eq!(ka.kernel_reads.ranges(), &[(0, 16)]);
        assert_eq!(ka.kernel_writes.ranges(), &[(100, 116)]);
        assert_eq!(ka.num_blocks(), 2);
        assert!(!ka.non_static);
    }
}
