//! Functional (architecturally-correct) interpreter for mini-PTX kernels.
//!
//! Used for three things: validating workload kernels, producing dynamic
//! traces for the timing model (via [`ExecObserver`]), and the end-to-end
//! correctness check that BlockMaestro's overlapped schedules compute the
//! same memory state as serialized execution.

use crate::isa::*;
use crate::kernel::Launch;
use crate::mem::GlobalMem;
use std::fmt;

/// Error produced during functional execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A thread exceeded the per-thread step limit (runaway loop).
    StepLimit {
        /// Linear block id.
        tb: u32,
        /// Linear thread id within the block.
        tid: u32,
    },
    /// Shared-memory access out of the declared `.shared` size.
    SharedOutOfBounds {
        /// Byte address within shared memory.
        addr: u64,
        /// Declared shared size.
        size: u32,
    },
    /// Threads did not all reach the same barrier.
    BarrierDivergence {
        /// Linear block id.
        tb: u32,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::StepLimit { tb, tid } => {
                write!(f, "step limit exceeded in block {tb}, thread {tid}")
            }
            ExecError::SharedOutOfBounds { addr, size } => {
                write!(
                    f,
                    "shared-memory access at {addr} out of bounds ({size} bytes)"
                )
            }
            ExecError::BarrierDivergence { tb } => {
                write!(f, "barrier divergence in block {tb}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// Identifies a thread during observed execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ThreadId {
    /// Linear block id.
    pub tb: u32,
    /// Linear thread id within the block (`tid.y * ntid.x + tid.x`).
    pub tid: u32,
}

impl ThreadId {
    /// Warp index of this thread (32 threads per warp).
    pub fn warp(&self) -> u32 {
        self.tid / 32
    }

    /// Lane within the warp.
    pub fn lane(&self) -> u32 {
        self.tid % 32
    }
}

/// Observation hooks for dynamic traces. All methods default to no-ops.
pub trait ExecObserver {
    /// Called for every instruction a thread actually executes
    /// (guard-failing instructions are *not* reported).
    fn on_inst(&mut self, _thread: ThreadId, _inst_idx: usize, _op: &Op) {}

    /// Called for every global-memory access with its byte address.
    fn on_global_access(&mut self, _thread: ThreadId, _inst_idx: usize, _addr: u64, _store: bool) {}
}

/// Observer that does nothing (for plain functional runs).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl ExecObserver for NullObserver {}

/// Execution statistics for a block or launch.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ExecStats {
    /// Dynamic instructions executed (guard-passing).
    pub instructions: u64,
    /// Global loads executed.
    pub global_loads: u64,
    /// Global stores executed.
    pub global_stores: u64,
}

impl ExecStats {
    /// Accumulates another stats record.
    pub fn merge(&mut self, other: &ExecStats) {
        self.instructions += other.instructions;
        self.global_loads += other.global_loads;
        self.global_stores += other.global_stores;
    }
}

/// Per-thread step limit; generous enough for all evaluation kernels while
/// still catching accidental infinite loops quickly.
pub const MAX_STEPS_PER_THREAD: u64 = 4_000_000;

#[derive(Clone)]
struct Thread {
    r32: Vec<u32>,
    r64: Vec<u64>,
    f32: Vec<f32>,
    pred: Vec<bool>,
    pc: usize,
    steps: u64,
    status: Status,
    tid_x: u32,
    tid_y: u32,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Status {
    Running,
    AtBarrier,
    Done,
}

fn reg_file_sizes(launch: &Launch) -> (usize, usize, usize, usize) {
    let [a, b, c, d] = max_reg_counts(&launch.kernel.body);
    (a, b, c, d)
}

/// Executes a single thread block functionally.
///
/// # Errors
///
/// Returns [`ExecError`] on runaway loops, shared-memory overflow, or
/// barrier divergence.
///
/// # Panics
///
/// Panics if a global access touches an unmapped device address (see
/// [`GlobalMem::read_u32`]).
pub fn execute_block<O: ExecObserver>(
    launch: &Launch,
    tb: u32,
    mem: &mut GlobalMem,
    obs: &mut O,
) -> Result<ExecStats, ExecError> {
    execute_block_limited(launch, tb, mem, obs, MAX_STEPS_PER_THREAD)
}

/// [`execute_block`] with an explicit per-thread step budget instead of the
/// default [`MAX_STEPS_PER_THREAD`] — the representative-TB trace of the
/// degradation ladder uses this to bound how long launch-time profiling may
/// run before falling back to an estimated profile.
///
/// # Errors
///
/// As [`execute_block`]; exceeding `max_steps` surfaces as
/// [`ExecError::StepLimit`].
pub fn execute_block_limited<O: ExecObserver>(
    launch: &Launch,
    tb: u32,
    mem: &mut GlobalMem,
    obs: &mut O,
    max_steps: u64,
) -> Result<ExecStats, ExecError> {
    let kernel = &launch.kernel;
    let (bx, by) = launch.block_coords(tb);
    let nthreads = launch.threads_per_block();
    let (n32, n64, nf, np) = reg_file_sizes(launch);
    let mut shared = vec![0u8; kernel.shared_bytes as usize];
    let mut threads: Vec<Thread> = (0..nthreads)
        .map(|t| Thread {
            r32: vec![0; n32],
            r64: vec![0; n64],
            f32: vec![0.0; nf],
            pred: vec![false; np],
            pc: 0,
            steps: 0,
            status: Status::Running,
            tid_x: t % launch.block.x,
            tid_y: t / launch.block.x,
        })
        .collect();
    let mut stats = ExecStats::default();
    loop {
        let mut any_running = false;
        for (t_idx, th) in threads.iter_mut().enumerate() {
            if th.status != Status::Running {
                continue;
            }
            any_running = true;
            let id = ThreadId {
                tb,
                tid: t_idx as u32,
            };
            run_thread(
                launch,
                bx,
                by,
                th,
                id,
                mem,
                &mut shared,
                obs,
                &mut stats,
                max_steps,
            )?;
        }
        if !any_running {
            // Everyone is Done or AtBarrier.
            let waiting = threads
                .iter()
                .filter(|t| t.status == Status::AtBarrier)
                .count();
            if waiting == 0 {
                return Ok(stats);
            }
            // Release the barrier for all waiters.
            for th in &mut threads {
                if th.status == Status::AtBarrier {
                    th.status = Status::Running;
                }
            }
        }
    }
}

/// [`execute_block_limited`] restricted to an explicit ascending list of
/// thread ids — the lane-law trace fast path executes only a block's anchor
/// and validation lanes and synthesizes the rest (see `crate::trace`).
///
/// The scheduling discipline is identical to the full executor (round-robin
/// over the listed threads, block-wide barrier release among them), so for
/// any subset the listed threads run in the same relative order as in a
/// full execution; only the memory/shared-state writes of unlisted threads
/// are absent.
///
/// # Errors
///
/// As [`execute_block_limited`].
pub fn execute_block_subset<O: ExecObserver>(
    launch: &Launch,
    tb: u32,
    mem: &mut GlobalMem,
    obs: &mut O,
    max_steps: u64,
    tids: &[u32],
) -> Result<ExecStats, ExecError> {
    let kernel = &launch.kernel;
    let (bx, by) = launch.block_coords(tb);
    let (n32, n64, nf, np) = reg_file_sizes(launch);
    let mut shared = vec![0u8; kernel.shared_bytes as usize];
    let mut threads: Vec<(u32, Thread)> = tids
        .iter()
        .map(|&t| {
            (
                t,
                Thread {
                    r32: vec![0; n32],
                    r64: vec![0; n64],
                    f32: vec![0.0; nf],
                    pred: vec![false; np],
                    pc: 0,
                    steps: 0,
                    status: Status::Running,
                    tid_x: t % launch.block.x,
                    tid_y: t / launch.block.x,
                },
            )
        })
        .collect();
    let mut stats = ExecStats::default();
    loop {
        let mut any_running = false;
        for (tid, th) in threads.iter_mut() {
            if th.status != Status::Running {
                continue;
            }
            any_running = true;
            let id = ThreadId { tb, tid: *tid };
            run_thread(
                launch,
                bx,
                by,
                th,
                id,
                mem,
                &mut shared,
                obs,
                &mut stats,
                max_steps,
            )?;
        }
        if !any_running {
            let waiting = threads
                .iter()
                .filter(|(_, t)| t.status == Status::AtBarrier)
                .count();
            if waiting == 0 {
                return Ok(stats);
            }
            for (_, th) in &mut threads {
                if th.status == Status::AtBarrier {
                    th.status = Status::Running;
                }
            }
        }
    }
}

/// Fallible pipeline entry point: validates the launch structure, then
/// executes every block, folding both launch and execution failures into
/// the crate-level [`crate::error::PtxError`].
///
/// # Errors
///
/// [`crate::error::PtxError::BadLaunch`] for malformed launches,
/// [`crate::error::PtxError::Exec`] for functional-execution failures.
pub fn try_execute_launch(
    launch: &Launch,
    mem: &mut GlobalMem,
) -> Result<ExecStats, crate::error::PtxError> {
    crate::error::validate_launch(launch)?;
    execute_launch(launch, mem).map_err(crate::error::PtxError::Exec)
}

/// Executes every block of a launch in linear block-id order.
///
/// # Errors
///
/// Propagates the first [`ExecError`] from any block.
pub fn execute_launch(launch: &Launch, mem: &mut GlobalMem) -> Result<ExecStats, ExecError> {
    let mut stats = ExecStats::default();
    for tb in 0..launch.num_blocks() {
        stats.merge(&execute_block(launch, tb, mem, &mut NullObserver)?);
    }
    Ok(stats)
}

#[allow(clippy::too_many_arguments)]
fn run_thread<O: ExecObserver>(
    launch: &Launch,
    bx: u32,
    by: u32,
    th: &mut Thread,
    id: ThreadId,
    mem: &mut GlobalMem,
    shared: &mut [u8],
    obs: &mut O,
    stats: &mut ExecStats,
    max_steps: u64,
) -> Result<(), ExecError> {
    let body = &launch.kernel.body;
    loop {
        if th.pc >= body.len() {
            th.status = Status::Done;
            return Ok(());
        }
        th.steps += 1;
        if th.steps > max_steps {
            return Err(ExecError::StepLimit {
                tb: id.tb,
                tid: id.tid,
            });
        }
        let inst = &body[th.pc];
        if let Some(g) = inst.guard {
            let p = th.pred[g.pred.idx as usize];
            if p == g.negated {
                th.pc += 1;
                continue;
            }
        }
        stats.instructions += 1;
        obs.on_inst(id, th.pc, &inst.op);
        let special = |s: Special| -> u32 {
            match s {
                Special::TidX => th.tid_x,
                Special::TidY => th.tid_y,
                Special::NtidX => launch.block.x,
                Special::NtidY => launch.block.y,
                Special::CtaidX => bx,
                Special::CtaidY => by,
                Special::NctaidX => launch.grid.x,
                Special::NctaidY => launch.grid.y,
            }
        };
        macro_rules! val32 {
            ($o:expr) => {
                match $o {
                    Operand::Reg(r) => th.r32[r.idx as usize],
                    Operand::ImmI(v) => v as u32,
                    Operand::ImmF(v) => v.to_bits(),
                    Operand::Special(s) => special(s),
                }
            };
        }
        macro_rules! val64 {
            ($o:expr) => {
                match $o {
                    Operand::Reg(r) => match r.class {
                        RegClass::R64 => th.r64[r.idx as usize],
                        RegClass::R32 => th.r32[r.idx as usize] as u64,
                        _ => 0,
                    },
                    Operand::ImmI(v) => v as u64,
                    Operand::ImmF(v) => v.to_bits() as u64,
                    Operand::Special(s) => special(s) as u64,
                }
            };
        }
        macro_rules! valf {
            ($o:expr) => {
                match $o {
                    Operand::Reg(r) => th.f32[r.idx as usize],
                    Operand::ImmF(v) => v,
                    Operand::ImmI(v) => v as f32,
                    Operand::Special(s) => special(s) as f32,
                }
            };
        }
        let mut next_pc = th.pc + 1;
        match &inst.op {
            Op::Mov { dst, src } => match dst.class {
                RegClass::R32 => th.r32[dst.idx as usize] = val32!(*src),
                RegClass::R64 => th.r64[dst.idx as usize] = val64!(*src),
                RegClass::F32 => th.f32[dst.idx as usize] = valf!(*src),
                RegClass::Pred => {
                    if let Operand::Reg(r) = src {
                        th.pred[dst.idx as usize] = th.pred[r.idx as usize];
                    }
                }
            },
            Op::Cvt { dst, src } => {
                let src_class = match src {
                    Operand::Reg(r) => r.class,
                    Operand::ImmF(_) => RegClass::F32,
                    _ => RegClass::R32,
                };
                match (dst.class, src_class) {
                    (RegClass::R64, _) => th.r64[dst.idx as usize] = val64!(*src),
                    (RegClass::R32, RegClass::F32) => th.r32[dst.idx as usize] = valf!(*src) as u32,
                    (RegClass::R32, _) => th.r32[dst.idx as usize] = val64!(*src) as u32,
                    (RegClass::F32, RegClass::F32) => th.f32[dst.idx as usize] = valf!(*src),
                    (RegClass::F32, _) => th.f32[dst.idx as usize] = val64!(*src) as f32,
                    (RegClass::Pred, _) => {}
                }
            }
            Op::Int { op, ty, dst, a, b } => match ty {
                IntTy::U32 => {
                    let (x, y) = (val32!(*a), val32!(*b));
                    th.r32[dst.idx as usize] = int_op_u32(*op, x, y);
                }
                IntTy::S32 => {
                    let (x, y) = (val32!(*a) as i32, val32!(*b) as i32);
                    th.r32[dst.idx as usize] = int_op_s32(*op, x, y) as u32;
                }
                IntTy::U64 => {
                    let (x, y) = (val64!(*a), val64!(*b));
                    th.r64[dst.idx as usize] = int_op_u64(*op, x, y);
                }
            },
            Op::Mad { ty, dst, a, b, c } => match ty {
                IntTy::U32 | IntTy::S32 => {
                    let v = val32!(*a).wrapping_mul(val32!(*b)).wrapping_add(val32!(*c));
                    th.r32[dst.idx as usize] = v;
                }
                IntTy::U64 => {
                    let v = val64!(*a).wrapping_mul(val64!(*b)).wrapping_add(val64!(*c));
                    th.r64[dst.idx as usize] = v;
                }
            },
            Op::MulWide { dst, a, b } => {
                th.r64[dst.idx as usize] = val32!(*a) as u64 * val32!(*b) as u64;
            }
            Op::MadWide { dst, a, b, c } => {
                th.r64[dst.idx as usize] =
                    (val32!(*a) as u64 * val32!(*b) as u64).wrapping_add(val64!(*c));
            }
            Op::Float { op, dst, a, b } => {
                let (x, y) = (valf!(*a), valf!(*b));
                th.f32[dst.idx as usize] = match op {
                    FloatOp::Add => x + y,
                    FloatOp::Sub => x - y,
                    FloatOp::Mul => x * y,
                    FloatOp::Div => x / y,
                    FloatOp::Min => x.min(y),
                    FloatOp::Max => x.max(y),
                };
            }
            Op::Fma { dst, a, b, c } => {
                th.f32[dst.idx as usize] = valf!(*a).mul_add(valf!(*b), valf!(*c));
            }
            Op::Sqrt { dst, a } => {
                th.f32[dst.idx as usize] = valf!(*a).sqrt();
            }
            Op::Setp { cmp, ty, dst, a, b } => {
                let r = match ty {
                    IntTy::U32 => cmp_int(*cmp, val32!(*a) as u64, val32!(*b) as u64),
                    IntTy::S32 => {
                        cmp_sint(*cmp, val32!(*a) as i32 as i64, val32!(*b) as i32 as i64)
                    }
                    IntTy::U64 => cmp_int(*cmp, val64!(*a), val64!(*b)),
                };
                th.pred[dst.idx as usize] = r;
            }
            Op::SetpF { cmp, dst, a, b } => {
                let (x, y) = (valf!(*a), valf!(*b));
                th.pred[dst.idx as usize] = match cmp {
                    CmpOp::Eq => x == y,
                    CmpOp::Ne => x != y,
                    CmpOp::Lt => x < y,
                    CmpOp::Le => x <= y,
                    CmpOp::Gt => x > y,
                    CmpOp::Ge => x >= y,
                };
            }
            Op::Selp { dst, a, b, p } => {
                let take_a = th.pred[p.idx as usize];
                match dst.class {
                    RegClass::R32 => {
                        th.r32[dst.idx as usize] = if take_a { val32!(*a) } else { val32!(*b) }
                    }
                    RegClass::R64 => {
                        th.r64[dst.idx as usize] = if take_a { val64!(*a) } else { val64!(*b) }
                    }
                    RegClass::F32 => {
                        th.f32[dst.idx as usize] = if take_a { valf!(*a) } else { valf!(*b) }
                    }
                    RegClass::Pred => {}
                }
            }
            Op::Ld {
                space,
                ty,
                dst,
                addr,
            } => match space {
                MemSpace::Global => {
                    let a = th.r64[addr.base.idx as usize].wrapping_add(addr.offset as u64);
                    stats.global_loads += 1;
                    obs.on_global_access(id, th.pc, a, false);
                    match ty {
                        MemTy::U32 => th.r32[dst.idx as usize] = mem.read_u32(a),
                        MemTy::F32 => th.f32[dst.idx as usize] = mem.read_f32(a),
                    }
                }
                MemSpace::Shared => {
                    let a = (th.r32[addr.base.idx as usize] as i64 + addr.offset) as u64;
                    let end = a + 4;
                    if end > shared.len() as u64 {
                        return Err(ExecError::SharedOutOfBounds {
                            addr: a,
                            size: launch.kernel.shared_bytes,
                        });
                    }
                    let bytes: [u8; 4] = shared[a as usize..a as usize + 4].try_into().unwrap();
                    let v = u32::from_le_bytes(bytes);
                    match ty {
                        MemTy::U32 => th.r32[dst.idx as usize] = v,
                        MemTy::F32 => th.f32[dst.idx as usize] = f32::from_bits(v),
                    }
                }
            },
            Op::St {
                space,
                ty,
                src,
                addr,
            } => {
                let v = match ty {
                    MemTy::U32 => val32!(*src),
                    MemTy::F32 => valf!(*src).to_bits(),
                };
                match space {
                    MemSpace::Global => {
                        let a = th.r64[addr.base.idx as usize].wrapping_add(addr.offset as u64);
                        stats.global_stores += 1;
                        obs.on_global_access(id, th.pc, a, true);
                        mem.write_u32(a, v);
                    }
                    MemSpace::Shared => {
                        let a = (th.r32[addr.base.idx as usize] as i64 + addr.offset) as u64;
                        let end = a + 4;
                        if end > shared.len() as u64 {
                            return Err(ExecError::SharedOutOfBounds {
                                addr: a,
                                size: launch.kernel.shared_bytes,
                            });
                        }
                        shared[a as usize..a as usize + 4].copy_from_slice(&v.to_le_bytes());
                    }
                }
            }
            Op::LdParam { dst, param } => {
                let raw = launch.args[*param as usize].as_u64();
                match dst.class {
                    RegClass::R64 => th.r64[dst.idx as usize] = raw,
                    RegClass::R32 => th.r32[dst.idx as usize] = raw as u32,
                    RegClass::F32 => th.f32[dst.idx as usize] = f32::from_bits(raw as u32),
                    RegClass::Pred => {}
                }
            }
            Op::Bra { target } => {
                next_pc = *target;
            }
            Op::Bar => {
                th.pc += 1;
                th.status = Status::AtBarrier;
                return Ok(());
            }
            Op::Ret => {
                th.status = Status::Done;
                return Ok(());
            }
        }
        th.pc = next_pc;
    }
}

fn int_op_u32(op: IntOp, x: u32, y: u32) -> u32 {
    match op {
        IntOp::Add => x.wrapping_add(y),
        IntOp::Sub => x.wrapping_sub(y),
        IntOp::Mul => x.wrapping_mul(y),
        IntOp::Div => x.checked_div(y).unwrap_or(u32::MAX),
        IntOp::Rem => {
            if y == 0 {
                x
            } else {
                x % y
            }
        }
        IntOp::Min => x.min(y),
        IntOp::Max => x.max(y),
        IntOp::And => x & y,
        IntOp::Or => x | y,
        IntOp::Xor => x ^ y,
        IntOp::Shl => x.wrapping_shl(y),
        IntOp::Shr => x.wrapping_shr(y),
    }
}

fn int_op_s32(op: IntOp, x: i32, y: i32) -> i32 {
    match op {
        IntOp::Add => x.wrapping_add(y),
        IntOp::Sub => x.wrapping_sub(y),
        IntOp::Mul => x.wrapping_mul(y),
        IntOp::Div => {
            if y == 0 {
                -1
            } else {
                x.wrapping_div(y)
            }
        }
        IntOp::Rem => {
            if y == 0 {
                x
            } else {
                x.wrapping_rem(y)
            }
        }
        IntOp::Min => x.min(y),
        IntOp::Max => x.max(y),
        IntOp::And => x & y,
        IntOp::Or => x | y,
        IntOp::Xor => x ^ y,
        IntOp::Shl => x.wrapping_shl(y as u32),
        IntOp::Shr => x.wrapping_shr(y as u32),
    }
}

fn int_op_u64(op: IntOp, x: u64, y: u64) -> u64 {
    match op {
        IntOp::Add => x.wrapping_add(y),
        IntOp::Sub => x.wrapping_sub(y),
        IntOp::Mul => x.wrapping_mul(y),
        IntOp::Div => x.checked_div(y).unwrap_or(u64::MAX),
        IntOp::Rem => {
            if y == 0 {
                x
            } else {
                x % y
            }
        }
        IntOp::Min => x.min(y),
        IntOp::Max => x.max(y),
        IntOp::And => x & y,
        IntOp::Or => x | y,
        IntOp::Xor => x ^ y,
        IntOp::Shl => x.wrapping_shl(y as u32),
        IntOp::Shr => x.wrapping_shr(y as u32),
    }
}

fn cmp_int(cmp: CmpOp, x: u64, y: u64) -> bool {
    match cmp {
        CmpOp::Eq => x == y,
        CmpOp::Ne => x != y,
        CmpOp::Lt => x < y,
        CmpOp::Le => x <= y,
        CmpOp::Gt => x > y,
        CmpOp::Ge => x >= y,
    }
}

fn cmp_sint(cmp: CmpOp, x: i64, y: i64) -> bool {
    match cmp {
        CmpOp::Eq => x == y,
        CmpOp::Ne => x != y,
        CmpOp::Lt => x < y,
        CmpOp::Le => x <= y,
        CmpOp::Gt => x > y,
        CmpOp::Ge => x >= y,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{ArgValue, Dim3, Launch};
    use crate::mem::{AddressSpace, GlobalMem};
    use crate::parser::parse_kernel;
    use std::sync::Arc;

    fn vecadd_launch(n: u32, a: u64, b: u64, c: u64) -> Launch {
        let src = r#"
.entry vecadd(.param .u64 A, .param .u64 B, .param .u64 C, .param .u32 n)
{
  ld.param.u64 %rd1, [A];
  ld.param.u64 %rd2, [B];
  ld.param.u64 %rd3, [C];
  ld.param.u32 %r4, [n];
  mov.u32 %r1, %ctaid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %tid.x;
  mad.lo.u32 %r5, %r1, %r2, %r3;
  setp.ge.u32 %p1, %r5, %r4;
  @%p1 bra $DONE;
  mul.wide.u32 %rd4, %r5, 4;
  add.u64 %rd5, %rd1, %rd4;
  ld.global.f32 %f1, [%rd5];
  add.u64 %rd6, %rd2, %rd4;
  ld.global.f32 %f2, [%rd6];
  add.f32 %f3, %f1, %f2;
  add.u64 %rd7, %rd3, %rd4;
  st.global.f32 [%rd7], %f3;
$DONE:
  ret;
}
"#;
        let k = Arc::new(parse_kernel(src).unwrap());
        Launch::new(
            k,
            Dim3::x(n.div_ceil(64)),
            Dim3::x(64),
            vec![
                ArgValue::Ptr(a),
                ArgValue::Ptr(b),
                ArgValue::Ptr(c),
                ArgValue::U32(n),
            ],
        )
    }

    #[test]
    fn vecadd_computes_sum() {
        let n = 100u32;
        let mut sp = AddressSpace::new();
        let (a, b, c) = (
            sp.alloc(4 * n as u64),
            sp.alloc(4 * n as u64),
            sp.alloc(4 * n as u64),
        );
        let mut mem = GlobalMem::for_space(&sp);
        let av: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let bv: Vec<f32> = (0..n).map(|i| 2.0 * i as f32).collect();
        mem.copy_from_host_f32(a.base, &av);
        mem.copy_from_host_f32(b.base, &bv);
        let launch = vecadd_launch(n, a.base, b.base, c.base);
        let stats = execute_launch(&launch, &mut mem).unwrap();
        let cv = mem.copy_to_host_f32(c.base, n as usize);
        for (i, v) in cv.iter().enumerate().take(n as usize) {
            assert_eq!(*v, 3.0 * i as f32);
        }
        // 100 active threads, 2 loads + 1 store each.
        assert_eq!(stats.global_loads, 200);
        assert_eq!(stats.global_stores, 100);
    }

    #[test]
    fn guard_masks_out_of_range_threads() {
        // n=10 with 64-thread blocks: threads 10..63 take the guard and do
        // no memory traffic.
        let n = 10u32;
        let mut sp = AddressSpace::new();
        let (a, b, c) = (sp.alloc(64), sp.alloc(64), sp.alloc(64));
        let mut mem = GlobalMem::for_space(&sp);
        let launch = vecadd_launch(n, a.base, b.base, c.base);
        let stats = execute_launch(&launch, &mut mem).unwrap();
        assert_eq!(stats.global_stores, 10);
    }

    #[test]
    fn loop_kernel_and_step_limit() {
        // A kernel summing n elements in a loop per thread.
        let src = r#"
.entry sum(.param .u64 A, .param .u64 O, .param .u32 n)
{
  ld.param.u64 %rd1, [A];
  ld.param.u64 %rd2, [O];
  ld.param.u32 %r9, [n];
  mov.u32 %r1, 0;
  mov.f32 %f1, 0f00000000;
$TOP:
  setp.ge.u32 %p1, %r1, %r9;
  @%p1 bra $OUT;
  mul.wide.u32 %rd3, %r1, 4;
  add.u64 %rd4, %rd1, %rd3;
  ld.global.f32 %f2, [%rd4];
  add.f32 %f1, %f1, %f2;
  add.u32 %r1, %r1, 1;
  bra $TOP;
$OUT:
  st.global.f32 [%rd2], %f1;
  ret;
}
"#;
        let k = Arc::new(parse_kernel(src).unwrap());
        let mut sp = AddressSpace::new();
        let a = sp.alloc(4 * 16);
        let o = sp.alloc(4);
        let mut mem = GlobalMem::for_space(&sp);
        mem.copy_from_host_f32(a.base, &[1.0; 16]);
        let launch = Launch::new(
            k,
            Dim3::x(1),
            Dim3::x(1),
            vec![
                ArgValue::Ptr(a.base),
                ArgValue::Ptr(o.base),
                ArgValue::U32(16),
            ],
        );
        execute_launch(&launch, &mut mem).unwrap();
        assert_eq!(mem.read_f32(o.base), 16.0);
    }

    #[test]
    fn infinite_loop_hits_step_limit() {
        let src = r#"
.entry spin(.param .u64 A)
{
$TOP:
  bra $TOP;
}
"#;
        let k = Arc::new(parse_kernel(src).unwrap());
        let mut sp = AddressSpace::new();
        let a = sp.alloc(4);
        let mut mem = GlobalMem::for_space(&sp);
        let launch = Launch::new(k, Dim3::x(1), Dim3::x(1), vec![ArgValue::Ptr(a.base)]);
        let err = execute_launch(&launch, &mut mem).unwrap_err();
        assert!(matches!(err, ExecError::StepLimit { .. }));
    }

    #[test]
    fn shared_memory_reverse_with_barrier() {
        // Each thread writes shared[tid], barrier, reads shared[ntid-1-tid].
        let src = r#"
.entry rev(.param .u64 A, .param .u64 B)
{
  .shared 256;
  ld.param.u64 %rd1, [A];
  ld.param.u64 %rd2, [B];
  mov.u32 %r1, %tid.x;
  mov.u32 %r2, %ntid.x;
  mul.wide.u32 %rd3, %r1, 4;
  add.u64 %rd4, %rd1, %rd3;
  ld.global.f32 %f1, [%rd4];
  shl.b32 %r3, %r1, 2;
  st.shared.f32 [%r3], %f1;
  bar.sync 0;
  sub.u32 %r4, %r2, 1;
  sub.u32 %r5, %r4, %r1;
  shl.b32 %r6, %r5, 2;
  ld.shared.f32 %f2, [%r6];
  add.u64 %rd5, %rd2, %rd3;
  st.global.f32 [%rd5], %f2;
  ret;
}
"#;
        let k = Arc::new(parse_kernel(src).unwrap());
        let mut sp = AddressSpace::new();
        let a = sp.alloc(4 * 64);
        let b = sp.alloc(4 * 64);
        let mut mem = GlobalMem::for_space(&sp);
        let av: Vec<f32> = (0..64).map(|i| i as f32).collect();
        mem.copy_from_host_f32(a.base, &av);
        let launch = Launch::new(
            k,
            Dim3::x(1),
            Dim3::x(64),
            vec![ArgValue::Ptr(a.base), ArgValue::Ptr(b.base)],
        );
        execute_launch(&launch, &mut mem).unwrap();
        let bv = mem.copy_to_host_f32(b.base, 64);
        for (i, v) in bv.iter().enumerate().take(64) {
            assert_eq!(*v, (63 - i) as f32);
        }
    }

    #[test]
    fn observer_sees_accesses() {
        struct Count(u64);
        impl ExecObserver for Count {
            fn on_global_access(&mut self, _t: ThreadId, _i: usize, _a: u64, _s: bool) {
                self.0 += 1;
            }
        }
        let n = 64u32;
        let mut sp = AddressSpace::new();
        let (a, b, c) = (sp.alloc(256), sp.alloc(256), sp.alloc(256));
        let mut mem = GlobalMem::for_space(&sp);
        let launch = vecadd_launch(n, a.base, b.base, c.base);
        let mut obs = Count(0);
        execute_block(&launch, 0, &mut mem, &mut obs).unwrap();
        assert_eq!(obs.0, 64 * 3);
    }
}
