//! Microbenchmarks of the BlockMaestro toolchain itself: parsing,
//! launch-time analysis, dependency-graph construction (fast vs. naive),
//! and the full engine.
//!
//! Uses a small std-only harness (`harness = false`) so the workspace
//! builds hermetically without crates.io access. Run with
//! `cargo bench -p bm-bench`.

use std::hint::black_box;
use std::time::Instant;

use blockmaestro::{jit_analyze_app, run_analyzed, ExecMode};
use bm_depgraph::interval_index::IntervalIndex;
use bm_depgraph::{build_graph, build_graph_naive, HazardMode};
use bm_ptx::absint::{analyze_launch, try_analyze_launch_fueled_par};
use bm_ptx::kernel::{ArgValue, Dim3, Launch};
use bm_ptx::par::ParallelConfig;
use bm_ptx::parser::parse_kernel;
use bm_simt::GpuConfig;
use bm_workloads::{hotspot, vectoradd, Scale};
use std::sync::Arc;

const VECADD_SRC: &str = r#"
.entry vecadd(.param .u64 A, .param .u64 B, .param .u64 C, .param .u32 n)
{
  ld.param.u64 %rd1, [A];
  ld.param.u64 %rd2, [B];
  ld.param.u64 %rd3, [C];
  ld.param.u32 %r9, [n];
  mov.u32 %r1, %ctaid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %tid.x;
  mad.lo.u32 %r4, %r1, %r2, %r3;
  setp.ge.u32 %p1, %r4, %r9;
  @%p1 bra $DONE;
  mul.wide.u32 %rd4, %r4, 4;
  add.u64 %rd5, %rd1, %rd4;
  ld.global.f32 %f1, [%rd5];
  add.u64 %rd6, %rd2, %rd4;
  ld.global.f32 %f2, [%rd6];
  add.f32 %f3, %f1, %f2;
  add.u64 %rd7, %rd3, %rd4;
  st.global.f32 [%rd7], %f3;
$DONE:
  ret;
}
"#;

/// Times `f` with warmup and enough iterations to cross a 200 ms budget,
/// printing a criterion-style mean-per-iteration line.
fn bench<R>(name: &str, mut f: impl FnMut() -> R) {
    // Warmup and single-shot estimate.
    let t0 = Instant::now();
    black_box(f());
    let est = t0.elapsed();
    let iters = (200_000_000u128 / est.as_nanos().max(1)).clamp(1, 100_000) as u64;
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let total = start.elapsed();
    let per_iter = total.as_nanos() / iters as u128;
    let (val, unit) = if per_iter >= 1_000_000 {
        (per_iter as f64 / 1e6, "ms")
    } else if per_iter >= 1_000 {
        (per_iter as f64 / 1e3, "us")
    } else {
        (per_iter as f64, "ns")
    };
    println!("{name:<40} {val:>10.2} {unit}/iter   ({iters} iters)");
}

fn bench_parser() {
    bench("parse_vecadd", || {
        parse_kernel(black_box(VECADD_SRC)).unwrap()
    });
}

fn bench_value_range_analysis() {
    let kernel = Arc::new(parse_kernel(VECADD_SRC).unwrap());
    for tbs in [64u32, 512] {
        let launch = Launch::new(
            kernel.clone(),
            Dim3::x(tbs),
            Dim3::x(256),
            vec![
                ArgValue::Ptr(0x10000),
                ArgValue::Ptr(0x200000),
                ArgValue::Ptr(0x400000),
                ArgValue::U32(tbs * 256),
            ],
        );
        bench(&format!("analyze_launch/{tbs}tbs"), || {
            analyze_launch(black_box(&launch))
        });
    }
}

/// The affine fast path vs. full per-TB interpretation on the same launch:
/// `reference` interprets every TB, `affine` interprets a handful of
/// anchors and synthesizes the rest by translation.
fn bench_affine_fastpath() {
    let kernel = Arc::new(parse_kernel(VECADD_SRC).unwrap());
    for tbs in [64u32, 512] {
        let launch = Launch::new(
            kernel.clone(),
            Dim3::x(tbs),
            Dim3::x(256),
            vec![
                ArgValue::Ptr(0x10000),
                ArgValue::Ptr(0x200000),
                ArgValue::Ptr(0x400000),
                ArgValue::U32(tbs * 256),
            ],
        );
        for (name, par) in [
            ("reference", ParallelConfig::reference()),
            ("affine", ParallelConfig::serial()),
        ] {
            bench(&format!("analyze_launch_{name}/{tbs}tbs"), || {
                let mut fuel = u64::MAX;
                try_analyze_launch_fueled_par(black_box(&launch), &mut fuel, &par).unwrap()
            });
        }
    }
}

/// Interval-index build + stabbing queries — the sweep structure behind
/// the scalable graph builder.
fn bench_interval_index() {
    let items: Vec<(u64, u64, u32)> = (0..1024u64)
        .map(|i| (i * 256, i * 256 + 320, i as u32)) // overlapping stencil halos
        .collect();
    bench("interval_index/build/1024", || {
        IntervalIndex::build(black_box(items.clone()))
    });
    let idx = IntervalIndex::build(items);
    bench("interval_index/query_sweep/1024", || {
        let mut hits = 0u64;
        for i in 0..1024u64 {
            idx.query(i * 256, i * 256 + 256, &mut |_| hits += 1);
        }
        hits
    });
}

fn bench_graph_builders() {
    // Stencil-shaped access sets: a case with real edge structure.
    let kernel = Arc::new(parse_kernel(VECADD_SRC).unwrap());
    let mk = |base: u64, tbs: u32| {
        let launch = Launch::new(
            kernel.clone(),
            Dim3::x(tbs),
            Dim3::x(256),
            vec![
                ArgValue::Ptr(base),
                ArgValue::Ptr(base + 0x100_0000),
                ArgValue::Ptr(base + 0x200_0000),
                ArgValue::U32(tbs * 256),
            ],
        );
        analyze_launch(&launch)
    };
    let parent = mk(0x10000, 256);
    let child = Launch::new(
        kernel.clone(),
        Dim3::x(256),
        Dim3::x(256),
        vec![
            ArgValue::Ptr(0x10000 + 0x200_0000), // reads what parent wrote
            ArgValue::Ptr(0x10000),
            ArgValue::Ptr(0x900_0000),
            ArgValue::U32(256 * 256),
        ],
    );
    let child = analyze_launch(&child);
    bench("build_graph/sweep/256x256", || {
        build_graph(black_box(&parent), black_box(&child), HazardMode::Raw)
    });
    bench("build_graph/naive/256x256", || {
        build_graph_naive(black_box(&parent), black_box(&child), HazardMode::Raw)
    });
}

fn bench_engine() {
    let cfg = GpuConfig::titan_x_pascal();
    let app = hotspot::build(Scale::Small);
    let jit = jit_analyze_app(&cfg, &app, HazardMode::Raw);
    bench("jit_analyze/hotspot_small", || {
        jit_analyze_app(black_box(&cfg), black_box(&app), HazardMode::Raw)
    });
    bench("engine_run/hotspot_small", || {
        run_analyzed(
            black_box(&cfg),
            black_box(&app),
            black_box(&jit),
            ExecMode::ConsumerPriority { window: 3 },
        )
    });
}

/// Ablation of the design choices §III-E calls out: scheduling policy and
/// pre-launch window depth on a dependency-heavy workload.
fn bench_ablation_policies() {
    let cfg = GpuConfig::titan_x_pascal();
    let app = vectoradd::build(512);
    let jit = jit_analyze_app(&cfg, &app, HazardMode::Raw);
    for mode in [
        ExecMode::Baseline,
        ExecMode::PreLaunch { window: 2 },
        ExecMode::ProducerPriority { window: 2 },
        ExecMode::ConsumerPriority { window: 2 },
        ExecMode::ConsumerPriority { window: 4 },
    ] {
        bench(&format!("ablation_policies/{mode}"), || {
            run_analyzed(black_box(&cfg), black_box(&app), black_box(&jit), mode)
        });
    }
}

fn main() {
    bench_parser();
    bench_value_range_analysis();
    bench_affine_fastpath();
    bench_interval_index();
    bench_graph_builders();
    bench_engine();
    bench_ablation_policies();
}
