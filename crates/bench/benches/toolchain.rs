//! Criterion microbenchmarks of the BlockMaestro toolchain itself: parsing,
//! launch-time analysis, dependency-graph construction (fast vs. naive),
//! the SM timing model, and the full engine.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use blockmaestro::{jit_analyze_app, run_analyzed, ExecMode};
use bm_depgraph::{build_graph, build_graph_naive, HazardMode};
use bm_ptx::absint::analyze_launch;
use bm_ptx::kernel::{ArgValue, Dim3, Launch};
use bm_ptx::parser::parse_kernel;
use bm_simt::GpuConfig;
use bm_workloads::{hotspot, vectoradd, Scale};
use std::sync::Arc;

const VECADD_SRC: &str = r#"
.entry vecadd(.param .u64 A, .param .u64 B, .param .u64 C, .param .u32 n)
{
  ld.param.u64 %rd1, [A];
  ld.param.u64 %rd2, [B];
  ld.param.u64 %rd3, [C];
  ld.param.u32 %r9, [n];
  mov.u32 %r1, %ctaid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %tid.x;
  mad.lo.u32 %r4, %r1, %r2, %r3;
  setp.ge.u32 %p1, %r4, %r9;
  @%p1 bra $DONE;
  mul.wide.u32 %rd4, %r4, 4;
  add.u64 %rd5, %rd1, %rd4;
  ld.global.f32 %f1, [%rd5];
  add.u64 %rd6, %rd2, %rd4;
  ld.global.f32 %f2, [%rd6];
  add.f32 %f3, %f1, %f2;
  add.u64 %rd7, %rd3, %rd4;
  st.global.f32 [%rd7], %f3;
$DONE:
  ret;
}
"#;

fn bench_parser(c: &mut Criterion) {
    c.bench_function("parse_vecadd", |b| {
        b.iter(|| parse_kernel(black_box(VECADD_SRC)).unwrap())
    });
}

fn bench_value_range_analysis(c: &mut Criterion) {
    let kernel = Arc::new(parse_kernel(VECADD_SRC).unwrap());
    for tbs in [64u32, 512] {
        let launch = Launch::new(
            kernel.clone(),
            Dim3::x(tbs),
            Dim3::x(256),
            vec![
                ArgValue::Ptr(0x10000),
                ArgValue::Ptr(0x200000),
                ArgValue::Ptr(0x400000),
                ArgValue::U32(tbs * 256),
            ],
        );
        c.bench_function(&format!("analyze_launch/{tbs}tbs"), |b| {
            b.iter(|| analyze_launch(black_box(&launch)))
        });
    }
}

fn bench_graph_builders(c: &mut Criterion) {
    // Stencil-shaped access sets: a case with real edge structure.
    let kernel = Arc::new(parse_kernel(VECADD_SRC).unwrap());
    let mk = |base: u64, tbs: u32| {
        let launch = Launch::new(
            kernel.clone(),
            Dim3::x(tbs),
            Dim3::x(256),
            vec![
                ArgValue::Ptr(base),
                ArgValue::Ptr(base + 0x100_0000),
                ArgValue::Ptr(base + 0x200_0000),
                ArgValue::U32(tbs * 256),
            ],
        );
        analyze_launch(&launch)
    };
    let parent = mk(0x10000, 256);
    let child = Launch::new(
        kernel.clone(),
        Dim3::x(256),
        Dim3::x(256),
        vec![
            ArgValue::Ptr(0x10000 + 0x200_0000), // reads what parent wrote
            ArgValue::Ptr(0x10000),
            ArgValue::Ptr(0x900_0000),
            ArgValue::U32(256 * 256),
        ],
    );
    let child = analyze_launch(&child);
    c.bench_function("build_graph/sweep/256x256", |b| {
        b.iter(|| build_graph(black_box(&parent), black_box(&child), HazardMode::Raw))
    });
    c.bench_function("build_graph/naive/256x256", |b| {
        b.iter(|| build_graph_naive(black_box(&parent), black_box(&child), HazardMode::Raw))
    });
}

fn bench_engine(c: &mut Criterion) {
    let cfg = GpuConfig::titan_x_pascal();
    let app = hotspot::build(Scale::Small);
    let jit = jit_analyze_app(&cfg, &app, HazardMode::Raw);
    c.bench_function("jit_analyze/hotspot_small", |b| {
        b.iter(|| jit_analyze_app(black_box(&cfg), black_box(&app), HazardMode::Raw))
    });
    c.bench_function("engine_run/hotspot_small", |b| {
        b.iter_batched(
            || (),
            |_| {
                run_analyzed(
                    black_box(&cfg),
                    black_box(&app),
                    black_box(&jit),
                    ExecMode::ConsumerPriority { window: 3 },
                )
            },
            BatchSize::SmallInput,
        )
    });
}

/// Ablation of the design choices §III-E calls out: scheduling policy and
/// pre-launch window depth on a dependency-heavy workload.
fn bench_ablation_policies(c: &mut Criterion) {
    let cfg = GpuConfig::titan_x_pascal();
    let app = vectoradd::build(512);
    let jit = jit_analyze_app(&cfg, &app, HazardMode::Raw);
    let mut group = c.benchmark_group("ablation_policies");
    for mode in [
        ExecMode::Baseline,
        ExecMode::PreLaunch { window: 2 },
        ExecMode::ProducerPriority { window: 2 },
        ExecMode::ConsumerPriority { window: 2 },
        ExecMode::ConsumerPriority { window: 4 },
    ] {
        group.bench_function(mode.to_string(), |b| {
            b.iter(|| run_analyzed(black_box(&cfg), black_box(&app), black_box(&jit), mode))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_parser,
    bench_value_range_analysis,
    bench_graph_builders,
    bench_engine,
    bench_ablation_policies
);
criterion_main!(benches);
