//! # bm-bench — evaluation harnesses
//!
//! One binary per table/figure of the paper (run with
//! `cargo run --release -p bm-bench --bin <name> [-- --small]`), plus
//! Criterion microbenchmarks of the toolchain itself.
//!
//! | Binary | Reproduces |
//! |--------|------------|
//! | `fig09_speedup` | Fig. 9 normalized speedups |
//! | `fig10_concurrency` | Fig. 10 normalized average TB concurrency |
//! | `fig11_stall_distribution` | Fig. 11 dependency-stall box plots |
//! | `fig12_interconnectivity` | Fig. 12 degree sweep on VectorAdd |
//! | `fig13_memory_overhead` | Fig. 13 memory-request overhead |
//! | `fig14_comparison` | Fig. 14 CDP / Wireframe comparison |
//! | `table1_encoding` | Table I encoding overheads |
//! | `table2_benchmarks` | Table II inventory + measured patterns |
//! | `table3_storage` | Table III normalized graph storage |
//! | `table_area` | §IV-C hardware area |

use blockmaestro::{jit_analyze_app, run_analyzed, ExecMode, JitKernel, RunReport};
use bm_cmdq::Application;
use bm_depgraph::HazardMode;
use bm_simt::GpuConfig;
use bm_workloads::{suite, Scale};

/// Results of running one application under the baseline plus all Fig. 9
/// variants, sharing a single JIT analysis pass.
#[derive(Debug)]
pub struct AppResults {
    /// Application name.
    pub name: String,
    /// Baseline run.
    pub baseline: RunReport,
    /// `(mode, report)` for each Fig. 9 variant, in presentation order.
    pub variants: Vec<(ExecMode, RunReport)>,
    /// The shared JIT analysis.
    pub jit: Vec<JitKernel>,
}

impl AppResults {
    /// The report for `mode`.
    ///
    /// # Panics
    ///
    /// Panics if `mode` was not among the variants run.
    pub fn report(&self, mode: ExecMode) -> &RunReport {
        self.variants
            .iter()
            .find(|(m, _)| *m == mode)
            .map(|(_, r)| r)
            .expect("mode was run")
    }

    /// Speedup of `mode` over the baseline (total execution time).
    pub fn speedup(&self, mode: ExecMode) -> f64 {
        bm_simt::stats::speedup(self.baseline.total_cycles, self.report(mode).total_cycles)
    }

    /// Normalized average TB concurrency of `mode` w.r.t. baseline.
    pub fn concurrency_ratio(&self, mode: ExecMode) -> f64 {
        if self.baseline.avg_concurrency == 0.0 {
            1.0
        } else {
            self.report(mode).avg_concurrency / self.baseline.avg_concurrency
        }
    }
}

/// Runs one application under baseline + all Fig. 9 variants.
pub fn run_all_modes(cfg: &GpuConfig, app: &Application) -> AppResults {
    let jit = jit_analyze_app(cfg, app, HazardMode::Raw);
    let baseline = run_analyzed(cfg, app, &jit, ExecMode::Baseline);
    let variants = ExecMode::figure9_variants()
        .into_iter()
        .map(|m| {
            let r = run_analyzed(cfg, app, &jit, m);
            (m, r)
        })
        .collect();
    AppResults {
        name: app.name.clone(),
        baseline,
        variants,
        jit,
    }
}

/// Runs the whole Table II suite at `scale`.
pub fn run_suite(cfg: &GpuConfig, scale: Scale) -> Vec<AppResults> {
    suite()
        .into_iter()
        .map(|b| {
            let app = (b.build)(scale);
            eprintln!("  running {} ({} kernels)...", b.name, app.num_kernels());
            run_all_modes(cfg, &app)
        })
        .collect()
}

/// Parses the common `--small` CLI flag.
pub fn scale_from_args() -> Scale {
    if std::env::args().any(|a| a == "--small") {
        Scale::Small
    } else {
        Scale::Full
    }
}

/// Prints a row of `cells` padded to `width` characters each.
pub fn print_row(cells: &[String], width: usize) {
    let line: Vec<String> = cells.iter().map(|c| format!("{c:>width$}")).collect();
    println!("{}", line.join(" "));
}

/// Geometric mean helper re-exported for binaries.
pub fn geomean(values: &[f64]) -> f64 {
    bm_simt::stats::geomean(values)
}
