//! Table III: total bipartite dependency-graph storage over each
//! application's entire run with pattern encoding, normalized to plain
//! (explicit edge-list) storage.
//!
//! Usage: `cargo run --release -p bm-bench --bin table3_storage [-- --small]`

use blockmaestro::jit_analyze_app;
use bm_bench::{print_row, scale_from_args};
use bm_depgraph::HazardMode;
use bm_simt::GpuConfig;
use bm_workloads::suite;

fn main() {
    let cfg = GpuConfig::titan_x_pascal();
    let scale = scale_from_args();
    eprintln!("Table III: normalized dependency-graph storage ({scale:?})");
    print_row(
        &[
            "app".into(),
            "encoded B".into(),
            "plain B".into(),
            "ratio".into(),
        ],
        14,
    );
    let mut ratios = Vec::new();
    for b in suite() {
        let app = (b.build)(scale);
        let jit = jit_analyze_app(&cfg, &app, HazardMode::Raw);
        let encoded: u64 = jit.iter().map(|k| k.storage.encoded_bytes).sum();
        let plain: u64 = jit.iter().map(|k| k.storage.plain_bytes).sum();
        let ratio = if plain == 0 {
            print_row(
                &[b.name.to_string(), "0".into(), "0".into(), "-".into()],
                14,
            );
            continue; // independent kernels store nothing (BICG, MVT)
        } else {
            encoded as f64 / plain as f64
        };
        ratios.push(ratio);
        print_row(
            &[
                b.name.to_string(),
                encoded.to_string(),
                plain.to_string(),
                format!("{ratio:.4}"),
            ],
            14,
        );
    }
    let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
    println!("{:>14} {:>14} {:>14} {:>14.4}", "average", "", "", avg);
    println!();
    println!("paper reference: average normalized storage 0.653 (34.7% saved)");
}
