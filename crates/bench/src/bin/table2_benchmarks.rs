//! Table II: the benchmark inventory — kernel counts and the dependency
//! patterns the launch-time analysis actually detects, next to the
//! pattern classes the paper lists.
//!
//! Usage: `cargo run --release -p bm-bench --bin table2_benchmarks [-- --small]`

use blockmaestro::jit_analyze_app;
use bm_bench::{print_row, scale_from_args};
use bm_depgraph::HazardMode;
use bm_simt::GpuConfig;
use bm_workloads::suite;
use std::collections::BTreeSet;

fn main() {
    let cfg = GpuConfig::titan_x_pascal();
    let scale = scale_from_args();
    eprintln!("Table II: benchmarks, kernel counts, detected patterns ({scale:?})");
    print_row(
        &[
            "app".into(),
            "#kernels".into(),
            "measured P#".into(),
            "paper P#".into(),
        ],
        18,
    );
    for b in suite() {
        let app = (b.build)(scale);
        let jit = jit_analyze_app(&cfg, &app, HazardMode::Raw);
        let measured: BTreeSet<u8> = jit
            .iter()
            .skip(1)
            .map(|k| k.storage.pattern.table_row())
            .collect();
        let fmt = |s: &BTreeSet<u8>| {
            s.iter()
                .map(|p| p.to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        let paper: BTreeSet<u8> = b.paper_patterns.iter().copied().collect();
        print_row(
            &[
                b.name.to_string(),
                app.num_kernels().to_string(),
                format!("({})", fmt(&measured)),
                format!("({})", fmt(&paper)),
            ],
            18,
        );
    }
    println!();
    println!(
        "note: '0' denotes an irregular (plain-stored) graph; measured\n\
         classes depend on the interval precision of the range analysis\n\
         and may be conservative relative to the paper's labels"
    );
}
