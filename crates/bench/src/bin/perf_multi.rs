//! Multi-GPU makespan scaling harness.
//!
//! Runs the wavefront-heavy Table II workloads (GAUSSIAN, NW, PATHFINDER,
//! HOTSPOT) across 1, 2, and 4 simulated devices under the headline
//! fine-grain mode and reports the kernel-region makespan for each device
//! count, plus the interconnect traffic and partition cut quality behind
//! it. Per-device resources are deliberately small (`GpuConfig::small`,
//! 4 SMs) so the suite's grids saturate a single device — multi-GPU
//! scaling is only meaningful when there is contention to relieve.
//!
//! Results are printed as a table and written as JSON (schema
//! `bm-bench/perf_multi/v1`) to `BENCH_multi.json` at the repository
//! root. Run with:
//!
//! ```text
//! cargo run --release -p bm-bench --bin perf_multi [-- --small] [-- --gate]
//! ```
//!
//! With `--gate`, exits nonzero if the `devices=1` path diverges from the
//! single-device engine (they must be bit-identical — that is the
//! programmer-transparency contract extended across devices), if any
//! multi-device run is not reproducible, or if 2 devices fail to beat 1
//! device on at least three of the four wavefront workloads. All gated
//! quantities are simulated cycle counts, fully deterministic, so there
//! is no noise floor or re-measure protocol here.

use blockmaestro::{jit_analyze_app, run_analyzed, ExecMode, JitKernel, RunReport};
use bm_bench::scale_from_args;
use bm_cmdq::Application;
use bm_depgraph::HazardMode;
use bm_multi::{try_run_analyzed_multi, MultiGpuConfig};
use bm_simt::GpuConfig;
use bm_workloads::suite;

/// Wavefront-heavy workloads whose TB-grain dependency structure gives a
/// partitioner something to preserve.
const WORKLOADS: [&str; 4] = ["GAUSSIAN", "NW", "PATH", "HS"];

/// Device counts swept per workload.
const DEVICE_COUNTS: [u32; 3] = [1, 2, 4];

/// The headline fine-grain mode (widest pre-launch window of Fig. 9).
const MODE: ExecMode = ExecMode::ConsumerPriority { window: 4 };

/// How many of the wavefront workloads 2 devices must strictly beat 1
/// device on for the `--gate` check.
const GATE_MIN_WINS: usize = 3;

struct DevicePoint {
    devices: u32,
    makespan: u64,
    total_cycles: u64,
    cut_edges: u64,
    total_edges: u64,
    transfers: u64,
    transfer_cycles: u64,
}

struct Row {
    name: String,
    kernels: usize,
    points: Vec<DevicePoint>,
}

fn point(report: &RunReport, devices: u32) -> DevicePoint {
    let (cut_edges, total_edges, transfers, transfer_cycles) = report
        .multi
        .as_ref()
        .map(|m| (m.cut_edges, m.total_edges, m.transfers, m.transfer_cycles))
        .unwrap_or((0, 0, 0, 0));
    DevicePoint {
        devices,
        makespan: report.kernel_region_cycles,
        total_cycles: report.total_cycles,
        cut_edges,
        total_edges,
        transfers,
        transfer_cycles,
    }
}

fn measure(cfg: &GpuConfig, app: &Application, jit: &[JitKernel]) -> Row {
    let points = DEVICE_COUNTS
        .iter()
        .map(|&d| {
            let mcfg = MultiGpuConfig::devices(d);
            let report = try_run_analyzed_multi(cfg, &mcfg, app, jit, MODE)
                .unwrap_or_else(|e| panic!("{}: devices={d}: {e}", app.name));
            point(&report, d)
        })
        .collect();
    Row {
        name: app.name.clone(),
        kernels: jit.len(),
        points,
    }
}

fn main() {
    let scale = scale_from_args();
    let gate = std::env::args().any(|a| a == "--gate");
    let cfg = GpuConfig::small();

    let mut rows = Vec::new();
    let mut violations: Vec<String> = Vec::new();
    println!("perf_multi ({scale:?}): kernel-region makespan by device count {DEVICE_COUNTS:?}");
    for bench in suite() {
        if !WORKLOADS.contains(&bench.name) {
            continue;
        }
        let app = (bench.build)(scale);
        let jit = jit_analyze_app(&cfg, &app, HazardMode::Raw);
        let row = measure(&cfg, &app, &jit);

        if gate {
            // devices=1 must be the single-device engine, bit for bit.
            let single = run_analyzed(&cfg, &app, &jit, MODE);
            let one = try_run_analyzed_multi(&cfg, &MultiGpuConfig::devices(1), &app, &jit, MODE)
                .expect("devices=1 rerun");
            if one != single {
                violations.push(format!(
                    "{}: devices=1 diverges from the single-device engine",
                    row.name
                ));
            }
            // Multi runs must be reproducible.
            for &d in &DEVICE_COUNTS[1..] {
                let mcfg = MultiGpuConfig::devices(d);
                let a = try_run_analyzed_multi(&cfg, &mcfg, &app, &jit, MODE).expect("rerun a");
                let b = try_run_analyzed_multi(&cfg, &mcfg, &app, &jit, MODE).expect("rerun b");
                if a != b {
                    violations.push(format!("{}: devices={d} is not reproducible", row.name));
                }
            }
        }

        let cells: Vec<String> = row
            .points
            .iter()
            .map(|p| format!("d{}={}", p.devices, p.makespan))
            .collect();
        let speedup = row.points[0].makespan as f64 / row.points[1].makespan.max(1) as f64;
        let p2 = &row.points[1];
        println!(
            "{:<10} kernels={:<4} {}  2-dev speedup {:.2}x  cut {}/{} edges, {} transfers ({} cyc)",
            row.name,
            row.kernels,
            cells.join(" "),
            speedup,
            p2.cut_edges,
            p2.total_edges,
            p2.transfers,
            p2.transfer_cycles,
        );
        rows.push(row);
    }

    let wins = rows
        .iter()
        .filter(|r| r.points[1].makespan < r.points[0].makespan)
        .count();
    println!("2 devices beat 1 on {wins}/{} workloads", rows.len());

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"bm-bench/perf_multi/v1\",\n");
    json.push_str(&format!(
        "  \"scale\": \"{}\",\n",
        match scale {
            bm_workloads::Scale::Small => "small",
            bm_workloads::Scale::Full => "full",
        }
    ));
    json.push_str(&format!("  \"mode\": \"{MODE}\",\n"));
    json.push_str(&format!(
        "  \"link_latency_cycles\": {},\n",
        MultiGpuConfig::default().link_latency_cycles
    ));
    json.push_str("  \"workloads\": [\n");
    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            let pts: Vec<String> = r
                .points
                .iter()
                .map(|p| {
                    format!(
                        "      {{ \"devices\": {}, \"makespan\": {}, \"total_cycles\": {}, \
                         \"cut_edges\": {}, \"total_edges\": {}, \"transfers\": {}, \
                         \"transfer_cycles\": {} }}",
                        p.devices,
                        p.makespan,
                        p.total_cycles,
                        p.cut_edges,
                        p.total_edges,
                        p.transfers,
                        p.transfer_cycles,
                    )
                })
                .collect();
            format!(
                "    {{ \"name\": \"{}\", \"kernels\": {}, \"points\": [\n{}\n    ] }}",
                r.name,
                r.kernels,
                pts.join(",\n"),
            )
        })
        .collect();
    json.push_str(&body.join(",\n"));
    json.push_str("\n  ]\n}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_multi.json");
    std::fs::write(path, &json).expect("write BENCH_multi.json");
    println!("wrote {path}");

    if gate {
        // Scaling is only gated at full scale: the small grids (e.g. PATH
        // at 4 TBs per kernel) cannot saturate even one device, so there
        // is no contention for a second device to relieve.
        if scale == bm_workloads::Scale::Full && wins < GATE_MIN_WINS {
            violations.push(format!(
                "2 devices beat 1 device on only {wins}/{} wavefront workloads \
                 (need {GATE_MIN_WINS})",
                rows.len()
            ));
        }
        if violations.is_empty() {
            println!("gate: ok — devices=1 bit-identical, runs reproducible, scaling holds");
        } else {
            for v in &violations {
                eprintln!("gate violation: {v}");
            }
            std::process::exit(1);
        }
    }
}
