//! Figure 10: normalized average thread-block concurrency with respect to
//! the baseline, per application and configuration.
//!
//! Usage: `cargo run --release -p bm-bench --bin fig10_concurrency [-- --small]`

use blockmaestro::ExecMode;
use bm_bench::{geomean, print_row, run_suite, scale_from_args};
use bm_simt::GpuConfig;

fn main() {
    let cfg = GpuConfig::titan_x_pascal();
    let scale = scale_from_args();
    eprintln!("Figure 10: normalized average TB concurrency w.r.t. baseline ({scale:?})");
    let results = run_suite(&cfg, scale);
    let modes = ExecMode::figure9_variants();
    let mut header = vec!["app".to_string()];
    header.extend(modes.iter().map(|m| m.to_string()));
    print_row(&header, 14);
    let mut per_mode: Vec<Vec<f64>> = vec![Vec::new(); modes.len()];
    for r in &results {
        let mut row = vec![r.name.clone()];
        for (i, m) in modes.iter().enumerate() {
            let c = r.concurrency_ratio(*m);
            per_mode[i].push(c);
            row.push(format!("{c:.3}"));
        }
        print_row(&row, 14);
    }
    let mut row = vec!["geomean".to_string()];
    for col in &per_mode {
        row.push(format!("{:.3}", geomean(col)));
    }
    print_row(&row, 14);
    println!();
    println!(
        "paper reference: concurrency rises with pre-launch depth; compute-\n\
         intensive apps (AlexNet) gain concurrency from fine-grain TB\n\
         dependency resolution even when their speedup is small"
    );
}
