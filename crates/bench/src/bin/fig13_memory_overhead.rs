//! Figure 13: memory-request overhead of BlockMaestro's hardware
//! dependency tracking (dependency-list and parent-counter traffic) as a
//! fraction of the application's own memory requests.
//!
//! Usage: `cargo run --release -p bm-bench --bin fig13_memory_overhead [-- --small]`

use blockmaestro::ExecMode;
use bm_bench::{print_row, run_suite, scale_from_args};
use bm_simt::GpuConfig;

fn main() {
    let cfg = GpuConfig::titan_x_pascal();
    let scale = scale_from_args();
    eprintln!("Figure 13: memory request overhead ({scale:?})");
    print_row(
        &[
            "app".into(),
            "app requests".into(),
            "hw requests".into(),
            "overhead %".into(),
        ],
        14,
    );
    let results = run_suite(&cfg, scale);
    let mut fracs = Vec::new();
    for r in &results {
        let rep = r.report(ExecMode::ConsumerPriority { window: 4 });
        let f = rep.mem_overhead_fraction();
        fracs.push(f);
        print_row(
            &[
                r.name.clone(),
                rep.baseline_mem_requests.to_string(),
                rep.overhead_mem_requests.to_string(),
                format!("{:.3}%", 100.0 * f),
            ],
            14,
        );
    }
    let avg = fracs.iter().sum::<f64>() / fracs.len() as f64;
    println!(
        "{:>14} {:>14} {:>14} {:>13.3}%",
        "average",
        "",
        "",
        100.0 * avg
    );
    println!();
    println!("paper reference: average memory request overhead ≈ 1.36%");
}
