//! Table I: hardware storage overhead of each dependency-pattern encoding,
//! demonstrated on synthetic graphs between a parent kernel of N TBs and a
//! child kernel of M TBs.
//!
//! Usage: `cargo run --release -p bm-bench --bin table1_encoding`

use bm_bench::print_row;
use bm_depgraph::{storage, BipartiteGraph};

fn main() {
    let (n, m) = (128u32, 256u32);
    eprintln!("Table I: encoding overhead for N={n} parent TBs, M={m} child TBs");
    print_row(
        &[
            "P#".into(),
            "pattern".into(),
            "encoded B".into(),
            "plain B".into(),
            "paper bound".into(),
        ],
        24,
    );
    let fully = BipartiteGraph::fully_connected(n, m);
    // n-group: 32 groups of 4 parents x 8 children.
    let ngroup = BipartiteGraph::from_children(
        n,
        m,
        (0..n)
            .map(|p| {
                let g = p / 4;
                (g * 8..g * 8 + 8).collect()
            })
            .collect(),
    );
    let one_to_one = BipartiteGraph::from_children(n, n, (0..n).map(|p| vec![p]).collect());
    let one_to_n =
        BipartiteGraph::from_children(n, m, (0..n).map(|p| vec![2 * p, 2 * p + 1]).collect());
    let n_to_one = BipartiteGraph::from_children(n, n / 2, (0..n).map(|p| vec![p / 2]).collect());
    let overlapped = {
        // Child c depends on parents {c-1, c, c+1} (stencil halo).
        let mut children = vec![Vec::new(); n as usize];
        for c in 0..n {
            for p in c.saturating_sub(1)..=(c + 1).min(n - 1) {
                children[p as usize].push(c);
            }
        }
        BipartiteGraph::from_children(n, n, children)
    };
    let independent = BipartiteGraph::independent(n, m);
    let rows: Vec<(&str, BipartiteGraph, &str)> = vec![
        ("fully connected", fully, "O(1)"),
        ("n-group fully connected", ngroup, "O(M+N)"),
        ("1-to-1", one_to_one, "O(N)"),
        ("1-to-n", one_to_n, "O(M+N)"),
        ("n-to-1", n_to_one, "O(N)"),
        ("overlapped", overlapped, "O(N + M*deg_max)"),
        ("independent", independent, "O(1)"),
    ];
    for (name, g, bound) in rows {
        let s = storage(&g);
        print_row(
            &[
                s.pattern.table_row().to_string(),
                name.into(),
                s.encoded_bytes.to_string(),
                s.plain_bytes.to_string(),
                bound.into(),
            ],
            24,
        );
    }
}
