//! Figure 12: interconnectivity analysis. Two equal-size VectorAdd
//! kernels; the dependency between them is artificially replaced with an
//! n-group fully-connected pattern of increasing degree, for several
//! workload sizes (TBs per kernel). Reported value: speedup of
//! BlockMaestro (producer priority) over the baseline.
//!
//! Usage: `cargo run --release -p bm-bench --bin fig12_interconnectivity`

use blockmaestro::{jit_analyze_app, run_analyzed, ExecMode};
use bm_bench::print_row;
use bm_depgraph::{storage, HazardMode, Pattern};
use bm_simt::GpuConfig;
use bm_workloads::vectoradd;

/// Hardware counter fallback threshold (6-bit counters, §IV-C).
const DEGRADE_ABOVE: u32 = 63;

fn main() {
    let cfg = GpuConfig::titan_x_pascal();
    let sizes = [256u32, 512, 1024, 2048];
    let degrees = [1u32, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];
    eprintln!("Figure 12: VectorAdd degree sweep (speedup over baseline)");
    let mut header = vec!["degree".to_string()];
    header.extend(sizes.iter().map(|s| format!("{s} TBs")));
    print_row(&header, 10);
    for &deg in &degrees {
        let mut row = vec![deg.to_string()];
        for &n_tbs in &sizes {
            if deg > n_tbs {
                row.push("-".into());
                continue;
            }
            let app = vectoradd::build(n_tbs);
            let mut jit = jit_analyze_app(&cfg, &app, HazardMode::Raw);
            // Inject the synthetic dependency pattern (paper §IV-C).
            let mut graph = vectoradd::synthetic_degree_graph(n_tbs, deg);
            if graph.max_child_degree() > DEGRADE_ABOVE {
                graph.degrade_to_fully_connected();
            }
            let st = storage(&graph);
            jit[1].encoded = !matches!(st.pattern, Pattern::Irregular);
            jit[1].graph = graph;
            jit[1].storage = st;
            let base = run_analyzed(&cfg, &app, &jit, ExecMode::Baseline);
            let bm = run_analyzed(&cfg, &app, &jit, ExecMode::ProducerPriority { window: 2 });
            row.push(format!(
                "{:.3}",
                bm_simt::stats::speedup(base.total_cycles, bm.total_cycles)
            ));
        }
        print_row(&row, 10);
    }
    println!();
    println!(
        "paper reference: benefits deteriorate once the dependency degree\n\
         passes ~32 (6-bit counters degrade to fully-connected at >63);\n\
         speedup also shrinks as the workload grows and vanishes by 2048 TBs"
    );
}
