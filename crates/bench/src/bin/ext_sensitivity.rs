//! Extension experiment: sensitivity of BlockMaestro's benefit to the two
//! architectural parameters the paper's numbers hinge on — the kernel
//! launch overhead (5 µs from ref.\[27\]; prior work reports 5–30 µs) and the
//! number of SMs.
//!
//! Usage: `cargo run --release -p bm-bench --bin ext_sensitivity [-- --small]`

use blockmaestro::{jit_analyze_app, run_analyzed, ExecMode};
use bm_bench::{geomean, print_row, scale_from_args};
use bm_depgraph::HazardMode;
use bm_simt::GpuConfig;
use bm_workloads::suite;

fn geomean_speedup(cfg: &GpuConfig, scale: bm_workloads::Scale) -> f64 {
    let mut speedups = Vec::new();
    for b in suite() {
        let app = (b.build)(scale);
        let jit = jit_analyze_app(cfg, &app, HazardMode::Raw);
        let base = run_analyzed(cfg, &app, &jit, ExecMode::Baseline);
        let bm = run_analyzed(cfg, &app, &jit, ExecMode::ConsumerPriority { window: 4 });
        speedups.push(base.total_cycles as f64 / bm.total_cycles as f64);
    }
    geomean(&speedups)
}

fn main() {
    let scale = scale_from_args();
    eprintln!("Extension: sensitivity analysis ({scale:?})");
    println!("launch-overhead sweep (28 SMs):");
    print_row(&["launch us".into(), "geomean speedup".into()], 16);
    for us in [1u64, 2, 5, 10, 20, 30] {
        let mut cfg = GpuConfig::titan_x_pascal();
        cfg.kernel_launch_cycles = us * 1_000;
        cfg.launch_api_cycles = (us * 1_000 * 2 / 5).max(400);
        let g = geomean_speedup(&cfg, scale);
        print_row(&[us.to_string(), format!("{g:.3}")], 16);
    }
    println!();
    println!("SM-count sweep (5 us launch):");
    print_row(&["SMs".into(), "geomean speedup".into()], 16);
    for sms in [14u32, 28, 56] {
        let mut cfg = GpuConfig::titan_x_pascal();
        cfg.num_sms = sms;
        let g = geomean_speedup(&cfg, scale);
        print_row(&[sms.to_string(), format!("{g:.3}")], 16);
    }
    println!();
    println!(
        "Expected shape: benefit grows with launch overhead (the masked\n\
         quantity) and with SM count (more slots for run-ahead TBs)."
    );
}
