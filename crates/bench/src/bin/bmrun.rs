//! `bmrun` — command-line driver for the BlockMaestro simulator.
//!
//! ```text
//! bmrun <APP|all> [--mode MODE] [--window N] [--small] [--all-hazards]
//!       [--verify] [--races] [--patterns] [--json]
//!       [--trace OUT.json] [--trace-summary]
//! ```
//!
//! * `APP` — a Table II name (`3MM`, `AlexNet`, `BICG`, `FDTD-2D`, `FFT`,
//!   `GAUSSIAN`, `GRAMSCHM`, `HS`, `LUD`, `MVT`, `NW`, `PATH`) or `all`.
//! * `--mode` — `baseline`, `ideal`, `graph` (CUDA-Graphs-style), `prelaunch`, `producer`, `consumer`
//!   (default `consumer`).
//! * `--window N` — concurrently-active kernels (default 3).
//! * `--small` — reduced workload scale.
//! * `--all-hazards` — track WAR/WAW in addition to RAW.
//! * `--verify` — functionally replay the schedule and compare against
//!   serialized execution.
//! * `--races` — run the inter-kernel race detector on the schedule.
//! * `--patterns` — print the per-kernel-pair dependency patterns.
//! * `--json` — print the full `RunReport` as JSON on stdout (suppresses
//!   the human-readable line).
//! * `--trace OUT.json` — record the run and write a Chrome trace-event
//!   file loadable in Perfetto (`ui.perfetto.dev`) or `chrome://tracing`.
//!   With `all`, the app name is inserted before the extension.
//! * `--trace-summary` — print a compact text digest of the recorded
//!   trace (implies recording; no file is needed).
//!
//! Example: `cargo run --release -p bm-bench --bin bmrun -- GAUSSIAN --mode consumer --window 4 --trace out.json`

use blockmaestro::{check_no_races, check_schedule, run_app_with, run_app_with_tracer, ExecMode};
use bm_depgraph::HazardMode;
use bm_simt::GpuConfig;
use bm_trace::json::Json;
use bm_trace::{export_chrome_trace, summarize, RecordingTracer};
use bm_workloads::{suite, Scale};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        eprintln!(
            "usage: bmrun <APP|all> [--mode MODE] [--window N] [--small] [--all-hazards] \
             [--verify] [--races] [--patterns] [--json] [--trace OUT.json] [--trace-summary]"
        );
        return ExitCode::from(2);
    }
    let app_name = args[0].clone();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let window: u32 = value("--window")
        .map(|v| v.parse().expect("--window takes an integer"))
        .unwrap_or(3);
    let mode = match value("--mode").as_deref().unwrap_or("consumer") {
        "baseline" => ExecMode::Baseline,
        "ideal" => ExecMode::IdealBaseline,
        "graph" => ExecMode::GraphLaunch,
        "prelaunch" => ExecMode::PreLaunch { window },
        "producer" => ExecMode::ProducerPriority { window },
        "consumer" => ExecMode::ConsumerPriority { window },
        other => {
            eprintln!("unknown mode `{other}`");
            return ExitCode::from(2);
        }
    };
    let scale = if flag("--small") {
        Scale::Small
    } else {
        Scale::Full
    };
    let hazard = if flag("--all-hazards") {
        HazardMode::All
    } else {
        HazardMode::Raw
    };
    let cfg = GpuConfig::titan_x_pascal();
    let benches: Vec<_> = suite()
        .into_iter()
        .filter(|b| app_name == "all" || b.name.eq_ignore_ascii_case(&app_name))
        .collect();
    if benches.is_empty() {
        eprintln!("unknown application `{app_name}` (try `all`)");
        return ExitCode::from(2);
    }
    let trace_path = value("--trace");
    let tracing = trace_path.is_some() || flag("--trace-summary");
    let json_out = flag("--json");
    let multi = benches.len() > 1;
    let mut json_reports: Vec<Json> = Vec::new();
    let mut failed = false;
    for bench in benches {
        let app = (bench.build)(scale);
        let base = run_app_with(&cfg, &app, ExecMode::Baseline, hazard);
        let (report, recorded) = if tracing {
            let tracer = RecordingTracer::new();
            let report = run_app_with_tracer(&cfg, &app, mode, hazard, &tracer);
            (report, Some(tracer.events()))
        } else {
            (run_app_with(&cfg, &app, mode, hazard), None)
        };
        if let (Some(path), Some(events)) = (trace_path.as_deref(), recorded.as_deref()) {
            // `bmrun all --trace out.json` writes out.GAUSSIAN.json etc.
            let path = if multi {
                match path.rsplit_once('.') {
                    Some((stem, ext)) => format!("{stem}.{}.{ext}", bench.name),
                    None => format!("{path}.{}", bench.name),
                }
            } else {
                path.to_string()
            };
            if let Err(e) = std::fs::write(&path, export_chrome_trace(events)) {
                eprintln!("cannot write trace `{path}`: {e}");
                return ExitCode::FAILURE;
            }
        }
        if json_out {
            let mut obj = report.to_json();
            if let Json::Obj(map) = &mut obj {
                map.insert("app".into(), Json::str(bench.name));
            }
            json_reports.push(obj);
        } else {
            println!(
                "{:<10} {:>4} kernels  {mode}: {:>10} cycles ({:.1} us)  baseline: {:>10}  speedup {:.3}x  concurrency {:.1}",
                bench.name,
                report.num_kernels,
                report.total_cycles,
                cfg.cycles_to_us(report.total_cycles),
                base.total_cycles,
                base.total_cycles as f64 / report.total_cycles as f64,
                report.avg_concurrency,
            );
        }
        if let (true, Some(events)) = (flag("--trace-summary"), recorded.as_deref()) {
            for line in summarize(events).lines() {
                println!("    {line}");
            }
        }
        if flag("--patterns") {
            for (i, (name, p)) in report.patterns.iter().enumerate().skip(1) {
                println!("    K{:<4} {:<14} {}", i, name, p);
            }
        }
        if flag("--verify") {
            match check_schedule(&app, &report.schedule) {
                Ok(eq) if eq.is_match() => println!("    verify : {eq}"),
                Ok(eq) => {
                    println!("    verify : FAILED — {eq}");
                    failed = true;
                }
                Err(e) => {
                    println!("    verify : execution error {e}");
                    failed = true;
                }
            }
        }
        if flag("--races") {
            match check_no_races(&app, &report.schedule) {
                Ok(races) if races.is_empty() => println!("    races  : none"),
                Ok(races) => {
                    println!(
                        "    races  : {} conflicts, first {:?}",
                        races.len(),
                        races[0]
                    );
                    failed = true;
                }
                Err(e) => {
                    println!("    races  : execution error {e}");
                    failed = true;
                }
            }
        }
    }
    if json_out {
        let doc = if json_reports.len() == 1 {
            json_reports.remove(0)
        } else {
            Json::Arr(json_reports)
        };
        println!("{doc}");
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
