//! `bmrun` — command-line driver for the BlockMaestro simulator.
//!
//! ```text
//! bmrun <APP|all> [--mode MODE] [--window N] [--small] [--all-hazards]
//!       [--devices N] [--link-latency C]
//!       [--verify] [--races] [--patterns] [--json] [--json-out OUT.json]
//!       [--trace OUT.json] [--trace-summary]
//!       [--checkpoint-every N] [--checkpoint-dir D] [--resume PATH] [--kill-at K]
//! ```
//!
//! * `APP` — a Table II name (`3MM`, `AlexNet`, `BICG`, `FDTD-2D`, `FFT`,
//!   `GAUSSIAN`, `GRAMSCHM`, `HS`, `LUD`, `MVT`, `NW`, `PATH`) or `all`.
//! * `--mode` — `baseline`, `ideal`, `graph` (CUDA-Graphs-style), `prelaunch`, `producer`, `consumer`
//!   (default `consumer`).
//! * `--window N` — concurrently-active kernels (default 3).
//! * `--small` — reduced workload scale.
//! * `--all-hazards` — track WAR/WAW in addition to RAW.
//! * `--devices N` — execute across N simulated GPUs, TB-grain sharded
//!   with cross-device pre-launch over a virtual interconnect (default 1,
//!   the plain single-device engine). Incompatible with checkpoint flags.
//! * `--link-latency C` — interconnect propagation latency in cycles
//!   (default 600 ≈ 0.5 µs NVLink-class; only meaningful with
//!   `--devices` > 1).
//! * `--verify` — functionally replay the schedule and compare against
//!   serialized execution.
//! * `--races` — run the inter-kernel race detector on the schedule.
//! * `--patterns` — print the per-kernel-pair dependency patterns.
//! * `--json` — print the full `RunReport` as JSON on stdout (suppresses
//!   the human-readable line).
//! * `--json-out OUT.json` — write the JSON report to a file (atomically)
//!   instead of stdout.
//! * `--trace OUT.json` — record the run and write a Chrome trace-event
//!   file loadable in Perfetto (`ui.perfetto.dev`) or `chrome://tracing`.
//!   With `all`, the app name is inserted before the extension.
//! * `--trace-summary` — print a compact text digest of the recorded
//!   trace (implies recording; no file is needed).
//! * `--checkpoint-every N` — snapshot the full run state every N retired
//!   kernels (atomic overwrite of the snapshot file).
//! * `--checkpoint-dir D` — directory for the snapshot file (default
//!   `.bmckpt`).
//! * `--resume PATH` — resume from the snapshot at PATH; a corrupt or
//!   mismatched snapshot is rejected and the run starts fresh. Later
//!   checkpoints overwrite PATH.
//! * `--kill-at K` — die (exit code 3) at the retirement boundary of
//!   kernel K, *after* that boundary's checkpoint is saved — a simulated
//!   crash for testing kill-and-resume.
//!
//! A resumed run's report is bit-identical to an uninterrupted run.
//! Checkpoint flags require a single APP (not `all`).
//!
//! Example: `cargo run --release -p bm-bench --bin bmrun -- GAUSSIAN --mode consumer --window 4 --trace out.json`

use blockmaestro::{
    atomic_write, check_no_races, check_schedule, run_app_with, run_app_with_tracer,
    try_run_app_checkpointed, try_run_app_checkpointed_traced, BmError, CheckpointPolicy, DirStore,
    EngineError, ExecMode, FaultPlan, RunSnapshot, SnapshotStore,
};
use bm_depgraph::HazardMode;
use bm_multi::{try_run_app_multi, try_run_app_multi_traced, MultiGpuConfig};
use bm_simt::GpuConfig;
use bm_trace::json::Json;
use bm_trace::{export_chrome_trace, summarize, RecordingTracer};
use bm_workloads::{suite, Scale};
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        eprintln!(
            "usage: bmrun <APP|all> [--mode MODE] [--window N] [--small] [--all-hazards] \
             [--devices N] [--link-latency C] \
             [--verify] [--races] [--patterns] [--json] [--json-out OUT.json] \
             [--trace OUT.json] [--trace-summary] \
             [--checkpoint-every N] [--checkpoint-dir D] [--resume PATH] [--kill-at K]"
        );
        return ExitCode::from(2);
    }
    let app_name = args[0].clone();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let window: u32 = value("--window")
        .map(|v| v.parse().expect("--window takes an integer"))
        .unwrap_or(3);
    let mode = match value("--mode").as_deref().unwrap_or("consumer") {
        "baseline" => ExecMode::Baseline,
        "ideal" => ExecMode::IdealBaseline,
        "graph" => ExecMode::GraphLaunch,
        "prelaunch" => ExecMode::PreLaunch { window },
        "producer" => ExecMode::ProducerPriority { window },
        "consumer" => ExecMode::ConsumerPriority { window },
        other => {
            eprintln!("unknown mode `{other}`");
            return ExitCode::from(2);
        }
    };
    let scale = if flag("--small") {
        Scale::Small
    } else {
        Scale::Full
    };
    let hazard = if flag("--all-hazards") {
        HazardMode::All
    } else {
        HazardMode::Raw
    };
    let cfg = GpuConfig::titan_x_pascal();
    let benches: Vec<_> = suite()
        .into_iter()
        .filter(|b| app_name == "all" || b.name.eq_ignore_ascii_case(&app_name))
        .collect();
    if benches.is_empty() {
        eprintln!("unknown application `{app_name}` (try `all`)");
        return ExitCode::from(2);
    }
    let trace_path = value("--trace");
    let tracing = trace_path.is_some() || flag("--trace-summary");
    let json_file = value("--json-out");
    let json_out = flag("--json") || json_file.is_some();
    let ckpt_every: Option<u32> = value("--checkpoint-every")
        .map(|v| v.parse().expect("--checkpoint-every takes an integer"));
    let ckpt_dir = value("--checkpoint-dir");
    let resume_path = value("--resume");
    let kill_at: Option<u32> =
        value("--kill-at").map(|v| v.parse().expect("--kill-at takes an integer"));
    let checkpointing =
        ckpt_every.is_some() || ckpt_dir.is_some() || resume_path.is_some() || kill_at.is_some();
    let multi = benches.len() > 1;
    if checkpointing && multi {
        eprintln!("checkpoint flags require a single APP (not `all`)");
        return ExitCode::from(2);
    }
    let devices: u32 = value("--devices")
        .map(|v| v.parse().expect("--devices takes an integer"))
        .unwrap_or(1);
    let mut mcfg = MultiGpuConfig::devices(devices);
    if let Some(v) = value("--link-latency") {
        mcfg.link_latency_cycles = v.parse().expect("--link-latency takes a cycle count");
    }
    if devices > 1 && checkpointing {
        eprintln!("--devices > 1 cannot be combined with checkpoint flags (multi-device resume is not supported)");
        return ExitCode::from(2);
    }
    let mut json_reports: Vec<Json> = Vec::new();
    let mut failed = false;
    for bench in benches {
        let app = (bench.build)(scale);
        let base = run_app_with(&cfg, &app, ExecMode::Baseline, hazard);
        let (report, recorded) = if checkpointing {
            let policy = match ckpt_every {
                Some(n) => CheckpointPolicy::every_kernels(n),
                None => CheckpointPolicy::disabled(),
            };
            let mut store = match &resume_path {
                Some(p) => DirStore::at_file(p.clone()),
                None => DirStore::new(ckpt_dir.clone().unwrap_or_else(|| ".bmckpt".into())),
            };
            let resume = resume_path.is_some();
            if resume {
                // Pre-probe the snapshot so rejection is visible even
                // without a tracer; the run itself degrades to fresh.
                match store.load() {
                    Ok(Some(bytes)) => {
                        if let Err(e) = RunSnapshot::decode(&bytes) {
                            eprintln!("bmrun: snapshot rejected ({e}); starting fresh");
                        }
                    }
                    Ok(None) => eprintln!(
                        "bmrun: no snapshot at `{}`; starting fresh",
                        store.path().display()
                    ),
                    Err(e) => eprintln!("bmrun: snapshot rejected ({e}); starting fresh"),
                }
            }
            let fault = FaultPlan {
                kill_at_kernel: kill_at,
                ..FaultPlan::default()
            };
            let run = if tracing {
                let tracer = RecordingTracer::new();
                try_run_app_checkpointed_traced(
                    &cfg, &app, mode, hazard, &fault, policy, &mut store, resume, &tracer,
                )
                .map(|report| (report, Some(tracer.events())))
            } else {
                try_run_app_checkpointed(
                    &cfg, &app, mode, hazard, &fault, policy, &mut store, resume,
                )
                .map(|report| (report, None))
            };
            match run {
                Ok(pair) => pair,
                Err(BmError::Engine(EngineError::Killed { cycle, retired })) => {
                    eprintln!(
                        "bmrun: killed at cycle {cycle} after {retired} kernels retired \
                         (snapshot at `{}`)",
                        store.path().display()
                    );
                    return ExitCode::from(3);
                }
                Err(e) => {
                    eprintln!("bmrun: {e}");
                    return ExitCode::FAILURE;
                }
            }
        } else if devices > 1 {
            let run = if tracing {
                let tracer = RecordingTracer::new();
                try_run_app_multi_traced(&cfg, &mcfg, &app, mode, hazard, &tracer)
                    .map(|report| (report, Some(tracer.events())))
            } else {
                try_run_app_multi(&cfg, &mcfg, &app, mode, hazard).map(|report| (report, None))
            };
            match run {
                Ok(pair) => pair,
                Err(e) => {
                    eprintln!("bmrun: {e}");
                    return ExitCode::FAILURE;
                }
            }
        } else if tracing {
            let tracer = RecordingTracer::new();
            let report = run_app_with_tracer(&cfg, &app, mode, hazard, &tracer);
            (report, Some(tracer.events()))
        } else {
            (run_app_with(&cfg, &app, mode, hazard), None)
        };
        if let (Some(path), Some(events)) = (trace_path.as_deref(), recorded.as_deref()) {
            // `bmrun all --trace out.json` writes out.GAUSSIAN.json etc.
            let path = if multi {
                match path.rsplit_once('.') {
                    Some((stem, ext)) => format!("{stem}.{}.{ext}", bench.name),
                    None => format!("{path}.{}", bench.name),
                }
            } else {
                path.to_string()
            };
            if let Err(e) = atomic_write(Path::new(&path), export_chrome_trace(events).as_bytes()) {
                eprintln!("cannot write trace `{path}`: {e}");
                return ExitCode::FAILURE;
            }
        }
        if json_out {
            let mut obj = report.to_json();
            if let Json::Obj(map) = &mut obj {
                map.insert("app".into(), Json::str(bench.name));
            }
            json_reports.push(obj);
        } else {
            println!(
                "{:<10} {:>4} kernels  {mode}: {:>10} cycles ({:.1} us)  baseline: {:>10}  speedup {:.3}x  concurrency {:.1}",
                bench.name,
                report.num_kernels,
                report.total_cycles,
                cfg.cycles_to_us(report.total_cycles),
                base.total_cycles,
                base.total_cycles as f64 / report.total_cycles as f64,
                report.avg_concurrency,
            );
        }
        if let (true, Some(events)) = (flag("--trace-summary"), recorded.as_deref()) {
            for line in summarize(events).lines() {
                println!("    {line}");
            }
        }
        if flag("--patterns") {
            for (i, (name, p)) in report.patterns.iter().enumerate().skip(1) {
                println!("    K{:<4} {:<14} {}", i, name, p);
            }
        }
        if flag("--verify") {
            match check_schedule(&app, &report.schedule) {
                Ok(eq) if eq.is_match() => println!("    verify : {eq}"),
                Ok(eq) => {
                    println!("    verify : FAILED — {eq}");
                    failed = true;
                }
                Err(e) => {
                    println!("    verify : execution error {e}");
                    failed = true;
                }
            }
        }
        if flag("--races") {
            match check_no_races(&app, &report.schedule) {
                Ok(races) if races.is_empty() => println!("    races  : none"),
                Ok(races) => {
                    println!(
                        "    races  : {} conflicts, first {:?}",
                        races.len(),
                        races[0]
                    );
                    failed = true;
                }
                Err(e) => {
                    println!("    races  : execution error {e}");
                    failed = true;
                }
            }
        }
    }
    if json_out {
        let doc = if json_reports.len() == 1 {
            json_reports.remove(0)
        } else {
            Json::Arr(json_reports)
        };
        if let Some(path) = json_file {
            if let Err(e) = atomic_write(Path::new(&path), format!("{doc}\n").as_bytes()) {
                eprintln!("cannot write report `{path}`: {e}");
                return ExitCode::FAILURE;
            }
        } else {
            println!("{doc}");
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
