//! Tracked performance harness for the launch-time analysis toolchain.
//!
//! Times the pipeline phase by phase — per-launch access-set analysis
//! (absint), representative-TB tracing, dependency-graph construction,
//! the full cold JIT pipeline, and the warm-cache replay — for every
//! Table II workload plus a 512-TB VectorAdd, under three configurations:
//!
//! * `reference`  — 1 thread, every fast path off (the pre-parallel
//!   pipeline, the correctness baseline);
//! * `affine`     — 1 thread, affine memoization + lane law + trace memo;
//! * `parallel8`  — 8 threads, all fast paths on, work-based admission.
//!
//! Each configuration also reports the copy-on-write bytes its trace
//! phase actually duplicates — the real cost of scratch cloning.
//!
//! Results are printed as a table and written as JSON (schema
//! `bm-bench/perf_analysis/v2`) to `BENCH_analysis.json` at the
//! repository root so successive commits can be compared. Run with:
//!
//! ```text
//! cargo run --release -p bm-bench --bin perf_analysis [-- --small] [-- --gate]
//! ```
//!
//! With `--gate`, exits nonzero if any configuration falls below 0.9x of
//! the reference on any phase (ignoring sub-200µs phases, which are noise
//! at `--small` scale). Suspected violations are re-measured in a tight
//! reference/candidate interleave before they count, so transient machine
//! load can't fail CI on its own — the no-regression gate.

use std::hint::black_box;
use std::time::Instant;

use blockmaestro::jit::try_profile_launch_limited;
use blockmaestro::{
    jit_analyze_app_par, run_analyzed, scratch_memory, try_profile_launch_law, AnalysisBudget,
    AnalysisCache, ExecMode, JitKernel, ParallelConfig,
};
use bm_bench::{geomean, scale_from_args};
use bm_cmdq::Application;
use bm_depgraph::{build_graph_bounded_par, HazardMode};
use bm_ptx::absint::try_analyze_launch_fueled_par;
use bm_simt::GpuConfig;
use bm_workloads::{suite, vectoradd, Scale};

/// The measured configurations, reference first.
fn configs() -> Vec<(&'static str, ParallelConfig)> {
    vec![
        ("reference", ParallelConfig::reference()),
        ("affine", ParallelConfig::serial()),
        ("parallel8", ParallelConfig::with_threads(8)),
    ]
}

/// Phase names, in presentation and gating order.
const PHASES: [&str; 5] = ["absint", "trace", "graph", "jit_cold", "jit_warm"];

/// Phases faster than this under the reference config are too noisy to
/// gate at `--small` scale: below ~200us a single scheduler preemption
/// or timer-granularity hiccup swamps the real signal even after
/// min-of-N sampling.
const GATE_FLOOR_NS: f64 = 200_000.0;

/// Minimum acceptable speedup vs reference for the `--gate` check.
const GATE_MIN_RATIO: f64 = 0.9;

/// One timed iteration of a single phase under `par`, in nanoseconds.
/// `warm` must have been populated by a prior full analysis under the
/// same config (only the warm phase reads it).
fn phase_once(
    gpu: &GpuConfig,
    app: &Application,
    budget: &AnalysisBudget,
    jit: &[JitKernel],
    warm: &mut AnalysisCache,
    phase: usize,
    par: &ParallelConfig,
) -> u128 {
    let t0 = Instant::now();
    match phase {
        0 => absint_pass(app, budget, par),
        1 => {
            black_box(trace_pass(gpu, app, budget, par));
        }
        2 => graph_pass(jit, budget, par),
        3 => {
            let mut cache = AnalysisCache::for_budget(budget);
            black_box(jit_analyze_app_par(
                gpu,
                black_box(app),
                HazardMode::Raw,
                budget,
                &mut cache,
                par,
            ));
        }
        _ => {
            black_box(jit_analyze_app_par(
                gpu,
                black_box(app),
                HazardMode::Raw,
                budget,
                warm,
                par,
            ));
        }
    }
    t0.elapsed().as_nanos()
}

/// Minimum wall-clock nanoseconds over repeated runs of one phase: one
/// warmup call, then as many timed calls as fit in `budget_ms` (at least
/// 3, at most 1000).
///
/// OS noise on a shared box is strictly additive (preemption, cache
/// pollution), so the minimum is a far more stable estimator of the true
/// cost than the mean — a single 10x scheduler stall would otherwise skew
/// an entire phase and trip the regression gate spuriously.
#[allow(clippy::too_many_arguments)]
fn min_phase_ns(
    gpu: &GpuConfig,
    app: &Application,
    budget: &AnalysisBudget,
    jit: &[JitKernel],
    warm: &mut AnalysisCache,
    phase: usize,
    par: &ParallelConfig,
    budget_ms: u64,
) -> f64 {
    phase_once(gpu, app, budget, jit, warm, phase, par);
    let slice = std::time::Duration::from_millis(budget_ms);
    let start = Instant::now();
    let mut iters: u32 = 0;
    let mut best = u128::MAX;
    while iters < 3 || (start.elapsed() < slice && iters < 1000) {
        best = best.min(phase_once(gpu, app, budget, jit, warm, phase, par));
        iters += 1;
    }
    best as f64
}

/// One absint pass over every launch of `app` (fresh fuel per launch, no
/// caching) — the pure access-set analysis phase.
fn absint_pass(app: &Application, budget: &AnalysisBudget, par: &ParallelConfig) {
    for launch in app.launches() {
        let mut fuel = budget.absint_fuel;
        black_box(try_analyze_launch_fueled_par(black_box(launch), &mut fuel, par).ok());
    }
}

/// One representative-TB trace per launch, through the path the given
/// config takes in the JIT pipeline: the reference interprets every lane
/// on a shared mutable scratch; fast configs run the warp lane law on
/// private copy-on-write clones of a shared scratch (which law-hostile
/// launches mutate directly, like the reference). Returns the CoW bytes
/// the pass duplicated.
fn trace_pass(
    gpu: &GpuConfig,
    app: &Application,
    budget: &AnalysisBudget,
    par: &ParallelConfig,
) -> u64 {
    let base = scratch_memory(app);
    let before = base.cow_copied_bytes();
    if par.trace_memo {
        let mut scratch = base.clone();
        for launch in app.launches() {
            black_box(
                try_profile_launch_law(gpu, launch, &mut scratch, budget.trace_steps, par).ok(),
            );
        }
    } else {
        let mut scratch = base.clone();
        for launch in app.launches() {
            black_box(
                try_profile_launch_limited(gpu, launch, &mut scratch, budget.trace_steps).ok(),
            );
        }
    }
    base.cow_copied_bytes() - before
}

/// One dependency-graph build per consecutive kernel pair, from
/// pre-computed access sets — the pure graph-construction phase.
fn graph_pass(jit: &[JitKernel], budget: &AnalysisBudget, par: &ParallelConfig) {
    for pair in jit.windows(2) {
        black_box(build_graph_bounded_par(
            &pair[0].access,
            &pair[1].access,
            HazardMode::Raw,
            budget.max_graph_edges,
            par,
        ));
    }
}

struct StageTimes {
    /// `phase_ns[phase][config]`, phases in [`PHASES`] order.
    phase_ns: Vec<Vec<f64>>,
    /// CoW bytes duplicated by one trace pass, per config.
    scratch_cow_bytes: Vec<u64>,
}

struct WorkloadRow {
    name: String,
    kernels: usize,
    times: StageTimes,
    run_ns: f64,
    run_cycles: u64,
}

fn measure(gpu: &GpuConfig, app: &Application, budget_ms: u64) -> WorkloadRow {
    let budget = AnalysisBudget::default();
    // Access sets for the graph phase, shared across configs (the graph
    // builder itself is what varies).
    let mut cache = AnalysisCache::for_budget(&budget);
    let jit = jit_analyze_app_par(
        gpu,
        app,
        HazardMode::Raw,
        &budget,
        &mut cache,
        &ParallelConfig::reference(),
    );
    let cfgs = configs();
    // One pre-populated cache per config for the warm phase.
    let mut warm: Vec<AnalysisCache> = cfgs
        .iter()
        .map(|(_, par)| {
            let mut c = AnalysisCache::for_budget(&budget);
            jit_analyze_app_par(gpu, app, HazardMode::Raw, &budget, &mut c, par);
            c
        })
        .collect();
    // Interleave configs across measurement rounds so slow machine drift
    // (thermal throttling, background load ramping up) lands on every
    // config instead of systematically penalising whichever one happens
    // to be measured last. Each (phase, config) cell keeps the minimum
    // over all rounds.
    let mut phase_ns: Vec<Vec<f64>> = PHASES
        .iter()
        .map(|_| vec![f64::INFINITY; cfgs.len()])
        .collect();
    const ROUNDS: u64 = 3;
    let slice_ms = (budget_ms / ROUNDS).max(1);
    for _ in 0..ROUNDS {
        for (ci, (_, par)) in cfgs.iter().enumerate() {
            for (p, cell) in phase_ns.iter_mut().enumerate() {
                let t = min_phase_ns(gpu, app, &budget, &jit, &mut warm[ci], p, par, slice_ms);
                cell[ci] = cell[ci].min(t);
            }
        }
    }
    let scratch_cow_bytes: Vec<u64> = cfgs
        .iter()
        .map(|(_, par)| trace_pass(gpu, app, &budget, par))
        .collect();
    let t0 = Instant::now();
    let report = run_analyzed(gpu, app, &jit, ExecMode::ConsumerPriority { window: 3 });
    let run_ns = t0.elapsed().as_nanos() as f64;
    WorkloadRow {
        name: app.name.clone(),
        kernels: jit.len(),
        times: StageTimes {
            phase_ns,
            scratch_cow_bytes,
        },
        run_ns,
        run_cycles: report.total_cycles,
    }
}

/// Re-measure a flagged (workload, phase, config) pair in a tight
/// reference/candidate interleave and return the reference/candidate
/// ratio.
///
/// The main measurement spends seconds per workload, so sustained
/// background load (another process ramping up mid-run) can bias every
/// sample of whichever config it overlaps, surviving even min-of-N.
/// Alternating single iterations back to back exposes both configs to
/// the same machine state, so only a real regression reproduces here.
fn recheck_ratio(
    gpu: &GpuConfig,
    app: &Application,
    phase: usize,
    par_cfg: &ParallelConfig,
) -> f64 {
    let budget = AnalysisBudget::default();
    let par_ref = ParallelConfig::reference();
    let mut cache = AnalysisCache::for_budget(&budget);
    let jit = jit_analyze_app_par(gpu, app, HazardMode::Raw, &budget, &mut cache, &par_ref);
    let mut warm_ref = AnalysisCache::for_budget(&budget);
    jit_analyze_app_par(gpu, app, HazardMode::Raw, &budget, &mut warm_ref, &par_ref);
    let mut warm_cfg = AnalysisCache::for_budget(&budget);
    jit_analyze_app_par(gpu, app, HazardMode::Raw, &budget, &mut warm_cfg, par_cfg);
    let deadline = Instant::now() + std::time::Duration::from_secs(3);
    let (mut best_ref, mut best_cfg) = (u128::MAX, u128::MAX);
    let mut rounds = 0u32;
    while rounds < 8 || (Instant::now() < deadline && rounds < 64) {
        best_ref = best_ref.min(phase_once(
            gpu,
            app,
            &budget,
            &jit,
            &mut warm_ref,
            phase,
            &par_ref,
        ));
        best_cfg = best_cfg.min(phase_once(
            gpu,
            app,
            &budget,
            &jit,
            &mut warm_cfg,
            phase,
            par_cfg,
        ));
        rounds += 1;
    }
    best_ref as f64 / (best_cfg as f64).max(1.0)
}

fn fmt_ms(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else {
        format!("{:.1}us", ns / 1e3)
    }
}

fn stage_json(names: &[&str], ns: &[f64]) -> String {
    let mut parts: Vec<String> = names
        .iter()
        .zip(ns)
        .map(|(n, v)| format!("\"{n}_ns\": {v:.1}"))
        .collect();
    for (i, n) in names.iter().enumerate().skip(1) {
        parts.push(format!("\"{}_speedup\": {:.3}", n, ns[0] / ns[i].max(1.0)));
    }
    format!("{{ {} }}", parts.join(", "))
}

fn main() {
    let scale = scale_from_args();
    let gate = std::env::args().any(|a| a == "--gate");
    let gpu = GpuConfig::titan_x_pascal();
    let budget_ms: u64 = match scale {
        Scale::Small => 60,
        Scale::Full => 250,
    };
    let mut apps: Vec<Application> = suite().into_iter().map(|b| (b.build)(scale)).collect();
    apps.push(vectoradd::build(512));
    let names: Vec<&str> = configs().iter().map(|(n, _)| *n).collect();

    println!(
        "perf_analysis ({:?}): phase times per config {:?}",
        scale, names
    );
    let mut rows = Vec::new();
    for app in &apps {
        eprintln!("  measuring {}...", app.name);
        let row = measure(&gpu, app, budget_ms);
        let phases: Vec<String> = PHASES
            .iter()
            .zip(&row.times.phase_ns)
            .map(|(phase, ns)| {
                format!(
                    "{phase}[{}]",
                    ns.iter().map(|&v| fmt_ms(v)).collect::<Vec<_>>().join(" ")
                )
            })
            .collect();
        println!(
            "{:<16} kernels={:<3} {} cow[{}] run={}",
            row.name,
            row.kernels,
            phases.join(" "),
            row.times
                .scratch_cow_bytes
                .iter()
                .map(|b| format!("{}K", b >> 10))
                .collect::<Vec<_>>()
                .join(" "),
            fmt_ms(row.run_ns),
        );
        rows.push(row);
    }

    // Geomean speedups vs reference, per phase and config.
    let speedup_of = |phase: usize, cfg: usize| -> f64 {
        geomean(
            &rows
                .iter()
                .map(|r| r.times.phase_ns[phase][0] / r.times.phase_ns[phase][cfg].max(1.0))
                .collect::<Vec<_>>(),
        )
    };
    println!("geomean speedup vs reference:");
    let mut geo: Vec<(String, f64)> = Vec::new();
    for (p, phase) in PHASES.iter().enumerate() {
        let affine = speedup_of(p, 1);
        let par8 = speedup_of(p, 2);
        println!("  {phase:<8} affine {affine:.2}x, parallel8 {par8:.2}x");
        geo.push((format!("{phase}_affine"), affine));
        geo.push((format!("{phase}_parallel8"), par8));
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"bm-bench/perf_analysis/v2\",\n");
    json.push_str(&format!(
        "  \"scale\": \"{}\",\n",
        match scale {
            Scale::Small => "small",
            Scale::Full => "full",
        }
    ));
    json.push_str(&format!(
        "  \"configs\": [{}],\n",
        names
            .iter()
            .map(|n| format!("\"{n}\""))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push_str("  \"workloads\": [\n");
    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            let phases: Vec<String> = PHASES
                .iter()
                .zip(&r.times.phase_ns)
                .map(|(phase, ns)| format!("\"{phase}\": {}", stage_json(&names, ns)))
                .collect();
            format!(
                "    {{ \"name\": \"{}\", \"kernels\": {}, {}, \"scratch_cow_bytes\": [{}], \"run_ns\": {:.1}, \"run_cycles\": {} }}",
                r.name,
                r.kernels,
                phases.join(", "),
                r.times
                    .scratch_cow_bytes
                    .iter()
                    .map(|b| b.to_string())
                    .collect::<Vec<_>>()
                    .join(", "),
                r.run_ns,
                r.run_cycles,
            )
        })
        .collect();
    json.push_str(&body.join(",\n"));
    json.push_str("\n  ],\n");
    json.push_str(&format!(
        "  \"geomean_speedup\": {{ {} }}\n",
        geo.iter()
            .map(|(k, v)| format!("\"{k}\": {v:.3}"))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push_str("}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_analysis.json");
    std::fs::write(path, &json).expect("write BENCH_analysis.json");
    println!("wrote {path}");

    if gate {
        let cfgs = configs();
        let mut violations = Vec::new();
        for (ri, r) in rows.iter().enumerate() {
            for (p, phase) in PHASES.iter().enumerate() {
                let reference = r.times.phase_ns[p][0];
                if reference < GATE_FLOOR_NS {
                    continue;
                }
                for (c, name) in names.iter().enumerate().skip(1) {
                    let ratio = reference / r.times.phase_ns[p][c].max(1.0);
                    if ratio >= GATE_MIN_RATIO {
                        continue;
                    }
                    // Confirm before failing: re-measure this pair in a
                    // tight interleave so a transient load spike during
                    // the main sweep can't fail CI on its own.
                    eprintln!(
                        "gate: re-checking {}: {phase} under {name} ({ratio:.2}x in main sweep)",
                        r.name
                    );
                    let confirmed = recheck_ratio(&gpu, &apps[ri], p, &cfgs[c].1);
                    if confirmed < GATE_MIN_RATIO {
                        violations.push(format!(
                            "{}: {phase} under {name} is {confirmed:.2}x of reference \
                             on re-measure ({ratio:.2}x in main sweep)",
                            r.name,
                        ));
                    } else {
                        eprintln!(
                            "gate: {}: {phase} under {name} resolved on re-measure \
                             ({confirmed:.2}x)",
                            r.name
                        );
                    }
                }
            }
        }
        if violations.is_empty() {
            println!(
                "gate: ok — no config below {GATE_MIN_RATIO}x of reference on any phase \
                 (floor {})",
                fmt_ms(GATE_FLOOR_NS)
            );
        } else {
            for v in &violations {
                eprintln!("gate violation: {v}");
            }
            std::process::exit(1);
        }
    }
}
