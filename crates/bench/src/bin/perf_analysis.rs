//! Tracked performance harness for the launch-time analysis toolchain.
//!
//! Times the three pipeline stages — per-launch access-set analysis
//! (absint), the full JIT pipeline (analysis + trace + graph), and the
//! execution engine — for every Table II workload plus a 512-TB VectorAdd,
//! under three configurations:
//!
//! * `reference`  — 1 thread, affine fast path off (the pre-parallel
//!   pipeline, the correctness baseline);
//! * `affine`     — 1 thread, affine per-TB memoization on;
//! * `parallel8`  — 8 threads, affine on.
//!
//! Results are printed as a table and written as JSON to
//! `BENCH_analysis.json` at the repository root so successive commits can
//! be compared. Run with:
//!
//! ```text
//! cargo run --release -p bm-bench --bin perf_analysis [-- --small]
//! ```

use std::hint::black_box;
use std::time::Instant;

use blockmaestro::{
    jit_analyze_app_par, run_analyzed, AnalysisBudget, AnalysisCache, ExecMode, ParallelConfig,
};
use bm_bench::{geomean, scale_from_args};
use bm_cmdq::Application;
use bm_depgraph::HazardMode;
use bm_ptx::absint::try_analyze_launch_fueled_par;
use bm_simt::GpuConfig;
use bm_workloads::{suite, vectoradd, Scale};

/// The measured configurations, reference first.
fn configs() -> Vec<(&'static str, ParallelConfig)> {
    vec![
        ("reference", ParallelConfig::reference()),
        ("affine", ParallelConfig::serial()),
        ("parallel8", ParallelConfig::with_threads(8)),
    ]
}

/// Mean wall-clock nanoseconds per call of `f`: one warmup call, then as
/// many timed calls as fit in `budget_ms` (at least 3, at most 1000).
fn time_ns(budget_ms: u64, mut f: impl FnMut()) -> f64 {
    f();
    let budget = std::time::Duration::from_millis(budget_ms);
    let start = Instant::now();
    let mut iters: u32 = 0;
    while iters < 3 || (start.elapsed() < budget && iters < 1000) {
        f();
        iters += 1;
    }
    start.elapsed().as_nanos() as f64 / f64::from(iters)
}

/// One absint pass over every launch of `app` (fresh fuel per launch, no
/// caching) — the pure access-set analysis stage.
fn absint_pass(app: &Application, budget: &AnalysisBudget, par: &ParallelConfig) {
    for launch in app.launches() {
        let mut fuel = budget.absint_fuel;
        black_box(try_analyze_launch_fueled_par(black_box(launch), &mut fuel, par).ok());
    }
}

struct StageTimes {
    absint_ns: Vec<f64>,
    jit_cold_ns: Vec<f64>,
    jit_warm_ns: Vec<f64>,
}

struct WorkloadRow {
    name: String,
    kernels: usize,
    times: StageTimes,
    run_ns: f64,
    run_cycles: u64,
}

fn measure(gpu: &GpuConfig, app: &Application, budget_ms: u64) -> WorkloadRow {
    let budget = AnalysisBudget::default();
    let mut absint_ns = Vec::new();
    let mut jit_cold_ns = Vec::new();
    let mut jit_warm_ns = Vec::new();
    for (_, par) in configs() {
        absint_ns.push(time_ns(budget_ms, || absint_pass(app, &budget, &par)));
        jit_cold_ns.push(time_ns(budget_ms, || {
            let mut cache = AnalysisCache::for_budget(&budget);
            black_box(jit_analyze_app_par(
                gpu,
                black_box(app),
                HazardMode::Raw,
                &budget,
                &mut cache,
                &par,
            ));
        }));
        let mut warm_cache = AnalysisCache::for_budget(&budget);
        jit_analyze_app_par(gpu, app, HazardMode::Raw, &budget, &mut warm_cache, &par);
        jit_warm_ns.push(time_ns(budget_ms, || {
            black_box(jit_analyze_app_par(
                gpu,
                black_box(app),
                HazardMode::Raw,
                &budget,
                &mut warm_cache,
                &par,
            ));
        }));
    }
    let mut cache = AnalysisCache::for_budget(&budget);
    let jit = jit_analyze_app_par(
        gpu,
        app,
        HazardMode::Raw,
        &budget,
        &mut cache,
        &ParallelConfig::reference(),
    );
    let t0 = Instant::now();
    let report = run_analyzed(gpu, app, &jit, ExecMode::ConsumerPriority { window: 3 });
    let run_ns = t0.elapsed().as_nanos() as f64;
    WorkloadRow {
        name: app.name.clone(),
        kernels: jit.len(),
        times: StageTimes {
            absint_ns,
            jit_cold_ns,
            jit_warm_ns,
        },
        run_ns,
        run_cycles: report.total_cycles,
    }
}

fn fmt_ms(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else {
        format!("{:.1}us", ns / 1e3)
    }
}

fn stage_json(names: &[&str], ns: &[f64]) -> String {
    let mut parts: Vec<String> = names
        .iter()
        .zip(ns)
        .map(|(n, v)| format!("\"{n}_ns\": {v:.1}"))
        .collect();
    for (i, n) in names.iter().enumerate().skip(1) {
        parts.push(format!("\"{}_speedup\": {:.3}", n, ns[0] / ns[i].max(1.0)));
    }
    format!("{{ {} }}", parts.join(", "))
}

fn main() {
    let scale = scale_from_args();
    let gpu = GpuConfig::titan_x_pascal();
    let budget_ms: u64 = match scale {
        Scale::Small => 60,
        Scale::Full => 250,
    };
    let mut apps: Vec<Application> = suite().into_iter().map(|b| (b.build)(scale)).collect();
    apps.push(vectoradd::build(512));
    let names: Vec<&str> = configs().iter().map(|(n, _)| *n).collect();

    println!(
        "perf_analysis ({:?}): stage times per config {:?}",
        scale, names
    );
    let mut rows = Vec::new();
    for app in &apps {
        eprintln!("  measuring {}...", app.name);
        let row = measure(&gpu, app, budget_ms);
        println!(
            "{:<16} kernels={:<3} absint[{}] jit_cold[{}] jit_warm[{}] run={}",
            row.name,
            row.kernels,
            row.times
                .absint_ns
                .iter()
                .map(|&v| fmt_ms(v))
                .collect::<Vec<_>>()
                .join(" "),
            row.times
                .jit_cold_ns
                .iter()
                .map(|&v| fmt_ms(v))
                .collect::<Vec<_>>()
                .join(" "),
            row.times
                .jit_warm_ns
                .iter()
                .map(|&v| fmt_ms(v))
                .collect::<Vec<_>>()
                .join(" "),
            fmt_ms(row.run_ns),
        );
        rows.push(row);
    }

    // Geomean speedups vs reference, per stage and config.
    let speedups = |extract: fn(&StageTimes) -> &Vec<f64>, idx: usize| -> f64 {
        geomean(
            &rows
                .iter()
                .map(|r| extract(&r.times)[0] / extract(&r.times)[idx].max(1.0))
                .collect::<Vec<_>>(),
        )
    };
    let absint_affine = speedups(|t| &t.absint_ns, 1);
    let absint_par8 = speedups(|t| &t.absint_ns, 2);
    let jit_affine = speedups(|t| &t.jit_cold_ns, 1);
    let jit_par8 = speedups(|t| &t.jit_cold_ns, 2);
    println!("geomean speedup vs reference:");
    println!("  absint: affine {absint_affine:.2}x, parallel8 {absint_par8:.2}x");
    println!("  jit:    affine {jit_affine:.2}x, parallel8 {jit_par8:.2}x");

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"bm-bench/perf_analysis/v1\",\n");
    json.push_str(&format!(
        "  \"scale\": \"{}\",\n",
        match scale {
            Scale::Small => "small",
            Scale::Full => "full",
        }
    ));
    json.push_str(&format!(
        "  \"configs\": [{}],\n",
        names
            .iter()
            .map(|n| format!("\"{n}\""))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push_str("  \"workloads\": [\n");
    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{ \"name\": \"{}\", \"kernels\": {}, \"absint\": {}, \"jit_cold\": {}, \"jit_warm\": {}, \"run_ns\": {:.1}, \"run_cycles\": {} }}",
                r.name,
                r.kernels,
                stage_json(&names, &r.times.absint_ns),
                stage_json(&names, &r.times.jit_cold_ns),
                stage_json(&names, &r.times.jit_warm_ns),
                r.run_ns,
                r.run_cycles,
            )
        })
        .collect();
    json.push_str(&body.join(",\n"));
    json.push_str("\n  ],\n");
    json.push_str(&format!(
        "  \"geomean_speedup\": {{ \"absint_affine\": {absint_affine:.3}, \"absint_parallel8\": {absint_par8:.3}, \"jit_affine\": {jit_affine:.3}, \"jit_parallel8\": {jit_par8:.3} }}\n"
    ));
    json.push_str("}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_analysis.json");
    std::fs::write(path, &json).expect("write BENCH_analysis.json");
    println!("wrote {path}");
}
