//! §IV-C area overhead: storage of the dependency-list buffer and parent
//! counter buffer in the thread-block scheduler.
//!
//! Usage: `cargo run --release -p bm-bench --bin table_area`

use blockmaestro::hw;

fn main() {
    println!("BlockMaestro scheduler hardware (§IV-C):");
    println!("  buffer entries       : {}", hw::BUFFER_ENTRIES);
    println!("  children per entry   : {}", hw::CHILDREN_PER_ENTRY);
    println!("  parent counter width : {} bits", hw::COUNTER_BITS);
    println!("  max encodable degree : {}", hw::MAX_COUNTER);
    let bytes = hw::area_bytes();
    println!(
        "  total storage        : {} bytes ({:.1} KB)",
        bytes,
        bytes as f64 / 1024.0
    );
    println!();
    println!("paper reference: ~22 KB of storage plus control logic");
}
