//! Figure 14: comparison with existing task-based execution models on six
//! wavefront applications of 4K tasks each — CUDA Dynamic Parallelism
//! ("Tasks as Kernels"), Wireframe ("Tasks as TBs"), and BlockMaestro with
//! producer and consumer priority. Speedups are normalized to CDP.
//!
//! Usage: `cargo run --release -p bm-bench --bin fig14_comparison`

use blockmaestro::compare::{run_task_graph, CompareModel, TaskGraph};
use bm_bench::{geomean, print_row};
use bm_simt::GpuConfig;

fn main() {
    let cfg = GpuConfig::titan_x_pascal();
    eprintln!("Figure 14: comparison with CDP and Wireframe (4K-task wavefronts)");
    let models = CompareModel::all();
    let mut header = vec!["app".to_string()];
    header.extend(models.iter().map(|m| m.label().to_string()));
    print_row(&header, 13);
    let mut per_model: Vec<Vec<f64>> = vec![Vec::new(); models.len()];
    for g in TaskGraph::figure14_suite() {
        let cdp = run_task_graph(&cfg, &g, CompareModel::Cdp).total_cycles;
        let mut row = vec![g.name.clone()];
        for (i, m) in models.iter().enumerate() {
            let t = run_task_graph(&cfg, &g, *m).total_cycles;
            let s = cdp as f64 / t as f64;
            per_model[i].push(s);
            row.push(format!("{s:.3}"));
        }
        print_row(&row, 13);
    }
    let mut row = vec!["geomean".to_string()];
    for col in &per_model {
        row.push(format!("{:.3}", geomean(col)));
    }
    print_row(&row, 13);
    println!();
    println!(
        "paper reference (normalized to CDP): Wireframe 1.368x, BlockMaestro\n\
         producer-priority 1.058x, BlockMaestro consumer-priority ≈2x.\n\
         Our launch pipeline hides more latency at window 2, so BM-producer\n\
         lands above the paper's value; orderings otherwise match."
    );
}
