//! Figure 9: normalized speedup of each BlockMaestro configuration with
//! respect to the serialized baseline, per application plus geomean.
//!
//! Usage: `cargo run --release -p bm-bench --bin fig09_speedup [-- --small]`

use blockmaestro::ExecMode;
use bm_bench::{geomean, print_row, run_suite, scale_from_args};
use bm_simt::GpuConfig;

fn main() {
    let cfg = GpuConfig::titan_x_pascal();
    let scale = scale_from_args();
    eprintln!("Figure 9: normalized speedup w.r.t. baseline ({scale:?} scale)");
    let results = run_suite(&cfg, scale);
    let modes = ExecMode::figure9_variants();
    let mut header = vec!["app".to_string()];
    header.extend(modes.iter().map(|m| m.to_string()));
    print_row(&header, 14);
    let mut per_mode: Vec<Vec<f64>> = vec![Vec::new(); modes.len()];
    for r in &results {
        let mut row = vec![r.name.clone()];
        for (i, m) in modes.iter().enumerate() {
            let s = r.speedup(*m);
            per_mode[i].push(s);
            row.push(format!("{s:.3}"));
        }
        print_row(&row, 14);
    }
    let mut row = vec!["geomean".to_string()];
    for col in &per_mode {
        row.push(format!("{:.3}", geomean(col)));
    }
    print_row(&row, 14);
    println!();
    println!(
        "paper reference: producer-priority geomean speedup 51.76% (1.518x),\n\
         consumer-priority w=4 geomean 80.28% (1.803x), max speedup 2.92x,\n\
         diminishing returns past 3 pre-launched kernels"
    );
}
