//! Figure 11: distribution of per-TB dependency stalls (time a thread
//! block whose data dependencies are satisfied waits before executing),
//! normalized to the TB's execution time. Box-plot quartiles for the
//! baseline and BlockMaestro (producer priority).
//!
//! Usage: `cargo run --release -p bm-bench --bin fig11_stall_distribution [-- --small]`

use blockmaestro::ExecMode;
use bm_bench::{print_row, run_suite, scale_from_args};
use bm_simt::stats::BoxStats;
use bm_simt::GpuConfig;

fn main() {
    let cfg = GpuConfig::titan_x_pascal();
    let scale = scale_from_args();
    eprintln!("Figure 11: dependency-stall distribution normalized to TB exec time ({scale:?})");
    let results = run_suite(&cfg, scale);
    print_row(
        &[
            "app".into(),
            "variant".into(),
            "q1".into(),
            "median".into(),
            "q3".into(),
            "max".into(),
        ],
        12,
    );
    for r in &results {
        for (label, stalls) in [
            ("baseline", &r.baseline.stalls_normalized),
            (
                "blockmaestro",
                &r.report(ExecMode::ProducerPriority { window: 2 })
                    .stalls_normalized,
            ),
        ] {
            let b = BoxStats::compute(stalls).expect("non-empty schedule");
            print_row(
                &[
                    r.name.clone(),
                    label.into(),
                    format!("{:.2}", b.q1),
                    format!("{:.2}", b.median),
                    format!("{:.2}", b.q3),
                    format!("{:.2}", b.max),
                ],
                12,
            );
        }
    }
    println!();
    println!(
        "paper reference: BlockMaestro visibly decreases stalls for most\n\
         apps; BICG and MVT drop dramatically because their two kernels\n\
         run in parallel"
    );
}
