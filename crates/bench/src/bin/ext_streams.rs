//! Extension experiment: CUDA-Streams-style execution vs. BlockMaestro.
//!
//! §IV-B notes that BICG/MVT's gains are "reflective of CUDA Streams
//! benefits" but that streams cannot overlap *dependent* kernels. This
//! harness quantifies that across the whole suite: kernels are auto-
//! assigned to streams (a careful programmer's best case), and speedups
//! over the serialized baseline are compared with BlockMaestro's.
//!
//! Usage: `cargo run --release -p bm-bench --bin ext_streams [-- --small]`

use blockmaestro::{jit_analyze_app, run_analyzed, run_streams, ExecMode, StreamAssignment};
use bm_bench::{geomean, print_row, scale_from_args};
use bm_depgraph::HazardMode;
use bm_simt::GpuConfig;
use bm_workloads::suite;

fn main() {
    let cfg = GpuConfig::titan_x_pascal();
    let scale = scale_from_args();
    eprintln!("Extension: CUDA Streams vs BlockMaestro ({scale:?})");
    print_row(
        &[
            "app".into(),
            "streams".into(),
            "streams-speedup".into(),
            "bm-speedup".into(),
        ],
        16,
    );
    let mut stream_s = Vec::new();
    let mut bm_s = Vec::new();
    for b in suite() {
        let app = (b.build)(scale);
        let jit = jit_analyze_app(&cfg, &app, HazardMode::Raw);
        let assignment = StreamAssignment::auto(&jit, 4);
        // Normalize both against the single-stream run of the same model,
        // so host prologue costs cancel out.
        let single = run_streams(&cfg, &jit, &StreamAssignment::single(jit.len()));
        let streams = run_streams(&cfg, &jit, &assignment);
        let base = run_analyzed(&cfg, &app, &jit, ExecMode::Baseline);
        let bm = run_analyzed(&cfg, &app, &jit, ExecMode::ConsumerPriority { window: 4 });
        let ss = single.total_cycles as f64 / streams.total_cycles as f64;
        let bs = base.kernel_region_cycles as f64 / bm.kernel_region_cycles as f64;
        stream_s.push(ss);
        bm_s.push(bs);
        print_row(
            &[
                b.name.to_string(),
                assignment.num_streams().to_string(),
                format!("{ss:.3}"),
                format!("{bs:.3}"),
            ],
            16,
        );
    }
    print_row(
        &[
            "geomean".into(),
            "".into(),
            format!("{:.3}", geomean(&stream_s)),
            format!("{:.3}", geomean(&bm_s)),
        ],
        16,
    );
    println!();
    println!(
        "Streams only help apps with data-independent kernels (BICG, MVT,\n\
         FDTD's ey/ex, FFT batches); BlockMaestro additionally overlaps\n\
         dependent kernels and masks launches, dominating everywhere."
    );
}
