//! The run service: a bounded queue, crash-isolated worker threads, and a
//! deterministic control plane.
//!
//! One [`RunService`] owns N worker threads. [`RunService::submit`]
//! admits a request into a bounded queue (or rejects it with
//! [`ServeError::Overloaded`]); a worker pops it and drives the existing
//! checkpointed pipeline ([`blockmaestro::try_run_app_checkpointed_ctl`])
//! with a per-request [`CancelToken`] threaded into both the analysis
//! ladder and the DES engine.
//!
//! Failure handling per attempt:
//!
//! - **cancel/deadline** — the token fired; the typed outcome carries the
//!   cause, and the final boundary checkpoint is left in the request's
//!   store (it is simply dropped with the request — the next *retry* of
//!   the same request would have resumed from it, but cancellation is
//!   terminal by design).
//! - **transient** (simulated crash [`EngineError::Killed`], guard
//!   quarantine exhaustion [`BmError::Unrecoverable`], worker panic) —
//!   retried after a deterministic capped-exponential backoff, resuming
//!   from the last valid snapshot; injected faults only apply to the
//!   first attempt.
//! - **permanent** (structural/toolchain errors) — surfaced immediately.
//!
//! Worker panics are contained with `catch_unwind`: the panicked
//! attempt's engine state unwinds and is disposed; only the checkpoint
//! store (whole snapshots, saved atomically at boundaries) survives into
//! the retry, so a crashed-then-retried request is bit-identical to an
//! uninterrupted one. Nothing request-scoped outlives the request, so a
//! reused worker cannot leak state across requests.

use crate::breaker::{Admission, Breaker, BreakerConfig, Transition};
use crate::clock::ServiceClock;
use crate::error::ServeError;
use crate::retry::RetryPolicy;
use blockmaestro::ExecMode;
use blockmaestro::{
    app_fingerprint, try_run_app_budgeted, try_run_app_checkpointed_ctl, AnalysisBudget, BmError,
    CheckpointPolicy, EngineError, FaultPlan, MemStore, RunCtl, RunReport,
};
use bm_cmdq::Application;
use bm_depgraph::HazardMode;
use bm_multi::{try_run_app_multi_faulty, MultiGpuConfig};
use bm_ptx::cancel::{CancelCause, CancelToken};
use bm_ptx::par::ParallelConfig;
use bm_ptx::PtxError;
use bm_simt::GpuConfig;
use bm_trace::{CounterRegistry, NullTracer, TraceEvent};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Service-level tuning.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads.
    pub workers: usize,
    /// Maximum queued (admitted but not started) requests; submits beyond
    /// this are rejected with [`ServeError::Overloaded`].
    pub queue_depth: usize,
    /// Default retry policy (per-request override via
    /// [`RunRequest::max_retries`]).
    pub retry: RetryPolicy,
    /// Circuit-breaker tuning.
    pub breaker: BreakerConfig,
    /// When an app's breaker is open: `true` runs the request on the fast
    /// fully-connected-barrier fallback ([`AnalysisBudget::exhausted`]),
    /// `false` rejects it with [`ServeError::Overloaded`].
    pub shed_to_barrier: bool,
    /// Kernel-retirement boundaries between checkpoints (resume granularity
    /// for retries).
    pub checkpoint_every: u32,
    /// Analysis parallelism for served runs; `None` uses the reference
    /// (serial) configuration.
    pub analysis: Option<ParallelConfig>,
    /// Simulated devices the service owns. A request's
    /// [`RunRequest::devices`] group is placed onto this pool: the
    /// worker blocks until the whole group is free, and a request
    /// asking for more than the pool holds is rejected with
    /// [`ServeError::Placement`].
    pub total_devices: u32,
    /// Interconnect tuning for multi-device placements; the per-request
    /// [`RunRequest::devices`] count overrides this template's
    /// `devices` field.
    pub multi: MultiGpuConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_depth: 16,
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
            shed_to_barrier: true,
            checkpoint_every: 1,
            analysis: None,
            total_devices: 4,
            multi: MultiGpuConfig::default(),
        }
    }
}

/// One app-run request.
#[derive(Debug, Clone)]
pub struct RunRequest {
    /// Caller-chosen id, echoed on the outcome and trace events.
    pub id: u64,
    /// The application to run.
    pub app: Application,
    /// Execution mode.
    pub mode: ExecMode,
    /// Hazard model for the launch-time analysis.
    pub hazard: HazardMode,
    /// Simulated devices to place the run on (min 1). Groups larger
    /// than 1 execute through `bm-multi`'s TB-grain sharding; every
    /// request holds its whole group for the duration of the run.
    pub devices: u32,
    /// Absolute service-clock tick after which the run is expired.
    pub deadline: Option<u64>,
    /// Override of [`ServeConfig::retry`]'s `max_retries`.
    pub max_retries: Option<u32>,
    /// Fault injection for tests (kill/panic/cancel at a boundary);
    /// applied to the first attempt only.
    pub fault: FaultPlan,
}

impl RunRequest {
    /// A request with the serve defaults: consumer-priority window 3,
    /// RAW hazards, no deadline, config-default retries, no faults.
    pub fn new(id: u64, app: Application) -> Self {
        RunRequest {
            id,
            app,
            mode: ExecMode::ConsumerPriority { window: 3 },
            hazard: HazardMode::Raw,
            devices: 1,
            deadline: None,
            max_retries: None,
            fault: FaultPlan::default(),
        }
    }
}

/// Terminal result of one request.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// The request's id.
    pub id: u64,
    /// Attempts consumed (0 for requests refused at admission).
    pub attempts: u32,
    /// The run was shed to the barrier fallback by an open breaker.
    pub shed: bool,
    /// The report, or the typed failure.
    pub result: Result<RunReport, ServeError>,
}

impl RunOutcome {
    /// Stable outcome label (`ok`, `shed`, or the error's label).
    pub fn label(&self) -> &'static str {
        match &self.result {
            Ok(_) if self.shed => "shed",
            Ok(_) => "ok",
            Err(e) => e.label(),
        }
    }
}

/// A submitted request's handle: wait for the outcome, or cancel it.
#[derive(Debug)]
pub struct Pending {
    /// The request's id.
    pub id: u64,
    token: CancelToken,
    rx: mpsc::Receiver<RunOutcome>,
}

impl Pending {
    /// Block until the request terminates.
    pub fn wait(self) -> RunOutcome {
        self.rx.recv().unwrap_or(RunOutcome {
            id: self.id,
            attempts: 0,
            shed: false,
            result: Err(ServeError::Shutdown),
        })
    }

    /// Cooperatively cancel the request (first cause wins — a deadline
    /// that already fired is not overridden).
    pub fn cancel(&self) {
        self.token.cancel();
    }

    /// This request's cancellation token (for external deadline wiring).
    pub fn token(&self) -> CancelToken {
        self.token.clone()
    }
}

struct Job {
    req: RunRequest,
    token: CancelToken,
    tx: mpsc::Sender<RunOutcome>,
}

struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

/// The service's simulated device inventory. A worker blocks until its
/// request's whole device group is free; the grant is a lease guard, so
/// a panicking attempt (contained by `catch_unwind` in [`process`]) can
/// never leak devices — the lease drops with the stack frame that
/// holds it.
struct DevicePool {
    free: Mutex<u32>,
    freed: Condvar,
}

impl DevicePool {
    fn new(total: u32) -> Self {
        DevicePool {
            free: Mutex::new(total),
            freed: Condvar::new(),
        }
    }

    /// Block until `n` devices are free, then take the whole group.
    /// Callers must have checked `n` against the pool total — asking
    /// for more than exists would block forever.
    fn acquire(&self, n: u32) -> DeviceLease<'_> {
        let mut free = self.free.lock().unwrap();
        while *free < n {
            free = self.freed.wait(free).unwrap();
        }
        *free -= n;
        DeviceLease { pool: self, n }
    }
}

struct DeviceLease<'a> {
    pool: &'a DevicePool,
    n: u32,
}

impl Drop for DeviceLease<'_> {
    fn drop(&mut self) {
        *self.pool.free.lock().unwrap() += self.n;
        self.pool.freed.notify_all();
    }
}

struct Shared {
    cfg: GpuConfig,
    scfg: ServeConfig,
    clock: Arc<dyn ServiceClock>,
    queue: Mutex<QueueState>,
    available: Condvar,
    breaker: Mutex<Breaker>,
    pool: DevicePool,
    events: Mutex<Vec<TraceEvent>>,
}

impl Shared {
    fn emit(&self, ev: TraceEvent) {
        self.events.lock().unwrap().push(ev);
    }

    fn emit_transition(&self, app_fp: u64, tr: Option<Transition>) {
        if let Some((from, to)) = tr {
            self.emit(TraceEvent::BreakerTransition {
                tick: self.clock.now(),
                app_fp,
                from: from.label().into(),
                to: to.label().into(),
            });
        }
    }
}

/// The multi-worker run service.
pub struct RunService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl RunService {
    /// Start `scfg.workers` workers simulating on `cfg` hardware, timed
    /// by `clock`.
    pub fn start(cfg: GpuConfig, scfg: ServeConfig, clock: Arc<dyn ServiceClock>) -> Self {
        let total_devices = scfg.total_devices.max(1);
        let shared = Arc::new(Shared {
            cfg,
            scfg,
            clock,
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
            breaker: Mutex::new(Breaker::new(BreakerConfig::default())),
            pool: DevicePool::new(total_devices),
            events: Mutex::new(Vec::new()),
        });
        // Re-seed the breaker with the configured tuning (constructed
        // above with defaults to keep Shared initialization simple).
        *shared.breaker.lock().unwrap() = Breaker::new(shared.scfg.breaker);
        let workers = (0..shared.scfg.workers.max(1))
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared, w as u32))
            })
            .collect();
        RunService { shared, workers }
    }

    /// Admit a request. Returns the pending handle, or
    /// [`ServeError::Overloaded`] when the queue is full /
    /// [`ServeError::Shutdown`] when the service is stopping.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`], [`ServeError::Shutdown`].
    pub fn submit(&self, req: RunRequest) -> Result<Pending, ServeError> {
        let shared = &self.shared;
        let token = CancelToken::new();
        let (tx, rx) = mpsc::channel();
        {
            let mut q = shared.queue.lock().unwrap();
            if q.shutdown {
                return Err(ServeError::Shutdown);
            }
            if q.jobs.len() >= shared.scfg.queue_depth {
                return Err(ServeError::Overloaded {
                    reason: format!("queue full ({} pending)", q.jobs.len()),
                });
            }
            if let Some(deadline) = req.deadline {
                shared.clock.expire_at(deadline, token.clone());
            }
            shared.emit(TraceEvent::ServeAdmit {
                tick: shared.clock.now(),
                request: req.id,
                queued: q.jobs.len() as u32 + 1,
            });
            let id = req.id;
            q.jobs.push_back(Job {
                req,
                token: token.clone(),
                tx,
            });
            shared.available.notify_one();
            drop(q);
            Ok(Pending { id, token, rx })
        }
    }

    /// Every serve-layer trace event emitted so far, in emission order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.shared.events.lock().unwrap().clone()
    }

    /// Fold the serve-layer events into a fresh counter registry.
    pub fn counters(&self) -> CounterRegistry {
        let mut reg = CounterRegistry::new();
        for ev in self.shared.events.lock().unwrap().iter() {
            reg.fold(ev);
        }
        reg
    }

    /// Stop accepting work, drain queued jobs as [`ServeError::Shutdown`],
    /// and join the workers.
    pub fn shutdown(mut self) {
        {
            let mut q = self.shared.queue.lock().unwrap();
            q.shutdown = true;
            for job in q.jobs.drain(..) {
                let _ = job.tx.send(RunOutcome {
                    id: job.req.id,
                    attempts: 0,
                    shed: false,
                    result: Err(ServeError::Shutdown),
                });
            }
            self.shared.available.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &Shared, worker: u32) {
    loop {
        let job = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    break job;
                }
                if q.shutdown {
                    return;
                }
                q = shared.available.wait(q).unwrap();
            }
        };
        let outcome = process(shared, worker, &job);
        shared.emit(TraceEvent::ServeComplete {
            tick: shared.clock.now(),
            request: job.req.id,
            outcome: outcome.label().into(),
        });
        let _ = job.tx.send(outcome);
    }
}

/// How one attempt's failure steers the retry loop.
enum AttemptFailure {
    Cancelled(CancelCause),
    Transient(String),
    Permanent(String),
}

fn classify(err: &BmError) -> AttemptFailure {
    match err {
        BmError::Engine(EngineError::Cancelled { cause, .. })
        | BmError::Ptx(PtxError::Cancelled(cause)) => AttemptFailure::Cancelled(*cause),
        // A simulated crash at a boundary: the checkpoint is durable,
        // resume and carry on.
        BmError::Engine(EngineError::Killed { .. }) => AttemptFailure::Transient(err.to_string()),
        // Quarantine exhaustion: the guard burned all its rounds. Another
        // attempt resumes from the checkpointed round counter rather than
        // replaying from scratch.
        BmError::Unrecoverable { .. } => AttemptFailure::Transient(err.to_string()),
        // Structural and toolchain failures are facts about the request.
        BmError::Ptx(_) | BmError::Cmdq(_) | BmError::Engine(_) => {
            AttemptFailure::Permanent(err.to_string())
        }
    }
}

fn cancel_outcome(shared: &Shared, job: &Job, attempts: u32, cause: CancelCause) -> RunOutcome {
    let tick = shared.clock.now();
    shared.emit(TraceEvent::ServeCancel {
        tick,
        request: job.req.id,
        deadline: cause == CancelCause::DeadlineExceeded,
    });
    let err = match cause {
        CancelCause::Cancelled => ServeError::Cancelled { tick },
        CancelCause::DeadlineExceeded => ServeError::DeadlineExceeded { tick },
    };
    RunOutcome {
        id: job.req.id,
        attempts,
        shed: false,
        result: Err(err),
    }
}

fn process(shared: &Shared, worker: u32, job: &Job) -> RunOutcome {
    let req = &job.req;
    let app_fp = app_fingerprint(&req.app);

    // Placement: the request's device group must fit the pool at all —
    // an impossible group is a typed rejection, not a queue wait — and
    // a possible one is held for the whole request (every attempt,
    // including the shed fallback) so concurrent placements can never
    // oversubscribe the simulated hardware.
    let group = req.devices.max(1);
    let total = shared.scfg.total_devices.max(1);
    if group > total {
        return RunOutcome {
            id: req.id,
            attempts: 0,
            shed: false,
            result: Err(ServeError::Placement {
                requested: group,
                total,
            }),
        };
    }
    let _lease = shared.pool.acquire(group);

    // Admission through the app's circuit breaker.
    let (admission, tr) = {
        let mut breaker = shared.breaker.lock().unwrap();
        breaker.admit(app_fp, shared.clock.now())
    };
    shared.emit_transition(app_fp, tr);
    let probing = admission == Admission::Probe;
    if admission == Admission::Shed {
        if !shared.scfg.shed_to_barrier {
            return RunOutcome {
                id: req.id,
                attempts: 0,
                shed: false,
                result: Err(ServeError::Overloaded {
                    reason: "circuit breaker open".into(),
                }),
            };
        }
        // Fast fallback: every kernel on the fully-connected-barrier rung.
        // Deliberately outside the breaker's bookkeeping — shed runs probe
        // nothing about the full pipeline's health.
        shared.emit(TraceEvent::ServeStart {
            tick: shared.clock.now(),
            request: req.id,
            worker,
            attempt: 1,
        });
        let result = try_run_app_budgeted(
            &shared.cfg,
            &req.app,
            req.mode,
            req.hazard,
            &AnalysisBudget::exhausted(),
        )
        .map_err(|e| ServeError::Failed {
            attempts: 1,
            error: e.to_string(),
        });
        return RunOutcome {
            id: req.id,
            attempts: 1,
            shed: true,
            result,
        };
    }

    // Fast-path: the token fired while queued (deadline or client cancel).
    if let Some(cause) = job.token.fired() {
        return cancel_outcome(shared, job, 0, cause);
    }

    let policy = CheckpointPolicy::every_kernels(shared.scfg.checkpoint_every.max(1));
    let ctl = RunCtl {
        par: shared.scfg.analysis.clone(),
        cancel: Some(job.token.clone()),
    };
    let max_attempts = 1 + req.max_retries.unwrap_or(shared.scfg.retry.max_retries);
    // Request-scoped: dropped with the request, so nothing leaks into the
    // worker's next job.
    let mut store = MemStore::default();
    let mut attempt = 0u32;
    let outcome = loop {
        attempt += 1;
        shared.emit(TraceEvent::ServeStart {
            tick: shared.clock.now(),
            request: req.id,
            worker,
            attempt,
        });
        // Injected faults fire on the first attempt only: a kill/panic
        // plan keyed to a boundary would otherwise re-fire on every
        // resume and the retry ladder could never converge.
        let fault = if attempt == 1 {
            req.fault.clone()
        } else {
            FaultPlan::default()
        };
        let resume = attempt > 1;
        let run = catch_unwind(AssertUnwindSafe(|| {
            if group > 1 {
                // Multi-device placements run through bm-multi's
                // TB-grain sharding. The coordinator has no resumable
                // checkpoint form, so a retried attempt replays from
                // scratch (still bit-identical — the pipeline is
                // deterministic), and cancellation is observed between
                // attempts rather than at kernel boundaries. Of the
                // fault plan only the link fields apply; a link fault
                // degrades inside the run to a single device rather
                // than failing the attempt.
                let mcfg = MultiGpuConfig {
                    devices: group,
                    ..shared.scfg.multi.clone()
                };
                try_run_app_multi_faulty(
                    &shared.cfg,
                    &mcfg,
                    &req.app,
                    req.mode,
                    req.hazard,
                    &fault,
                    &NullTracer,
                )
            } else {
                try_run_app_checkpointed_ctl(
                    &shared.cfg,
                    &req.app,
                    req.mode,
                    req.hazard,
                    &fault,
                    policy,
                    &mut store,
                    resume,
                    &NullTracer,
                    &ctl,
                )
            }
        }));
        let failure = match run {
            Ok(Ok(report)) => {
                break RunOutcome {
                    id: req.id,
                    attempts: attempt,
                    shed: false,
                    result: Ok(report),
                }
            }
            Ok(Err(e)) => classify(&e),
            Err(payload) => AttemptFailure::Transient(format!(
                "worker panic: {}",
                panic_message(payload.as_ref())
            )),
        };
        match failure {
            AttemptFailure::Cancelled(cause) => {
                break cancel_outcome(shared, job, attempt, cause);
            }
            AttemptFailure::Permanent(error) => {
                break RunOutcome {
                    id: req.id,
                    attempts: attempt,
                    shed: false,
                    result: Err(ServeError::Failed {
                        attempts: attempt,
                        error,
                    }),
                };
            }
            AttemptFailure::Transient(reason) => {
                if attempt >= max_attempts {
                    let err = if reason.starts_with("worker panic") {
                        ServeError::WorkerCrash {
                            attempts: attempt,
                            message: reason,
                        }
                    } else {
                        ServeError::RetriesExhausted {
                            attempts: attempt,
                            last: reason,
                        }
                    };
                    break RunOutcome {
                        id: req.id,
                        attempts: attempt,
                        shed: false,
                        result: Err(err),
                    };
                }
                let backoff = shared.scfg.retry.backoff(attempt - 1);
                let now = shared.clock.now();
                shared.emit(TraceEvent::ServeRetry {
                    tick: now,
                    request: req.id,
                    attempt,
                    backoff,
                    reason,
                });
                shared.clock.sleep_until(now.saturating_add(backoff));
                // The deadline may have passed during the backoff.
                if let Some(cause) = job.token.fired() {
                    break cancel_outcome(shared, job, attempt, cause);
                }
            }
        }
    };

    // Feed the breaker. Cancellations and deadline misses say nothing
    // about the app's health and are not recorded.
    let record = match &outcome.result {
        Ok(_) => Some(true),
        Err(
            ServeError::WorkerCrash { .. }
            | ServeError::RetriesExhausted { .. }
            | ServeError::Failed { .. },
        ) => Some(false),
        Err(_) => None,
    };
    if let Some(success) = record {
        let tr = {
            let mut breaker = shared.breaker.lock().unwrap();
            breaker.record(app_fp, success, shared.clock.now())
        };
        shared.emit_transition(app_fp, tr);
    } else if probing {
        // A cancelled probe neither opens nor closes the breaker; give
        // the probe slot back so the next request can probe.
        shared.breaker.lock().unwrap().abandon_probe(app_fp);
    }
    outcome
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}
