//! The `bmserve` wire protocol: newline-delimited JSON.
//!
//! One request per line on the way in, one response per line on the way
//! out; responses stream back in completion order (not submission
//! order), matched to requests by `id`.
//!
//! Request schema (unknown keys rejected):
//!
//! ```json
//! {"id": 1, "app": "GAUSSIAN", "scale": "small", "mode": "consumer:3",
//!  "devices": 2, "deadline": 5000, "retries": 2,
//!  "kill_at": 3, "panic_at": 3, "cancel_at": 3}
//! ```
//!
//! - `id` (required): caller-chosen request id, echoed on the response.
//! - `app` (required): a Table II workload name (`GAUSSIAN`, `BICG`, …,
//!   case-insensitive).
//! - `scale`: `"small"` (default) or `"full"`.
//! - `mode`: `"baseline"`, `"ideal"`, `"graph"`, `"prelaunch:N"`,
//!   `"producer:N"`, or `"consumer:N"` (default `"consumer:3"`).
//! - `devices`: size of the simulated device group to place the run on
//!   (default 1). The worker blocks until that many devices are free;
//!   asking for more than the service owns is a typed `placement`
//!   rejection.
//! - `deadline`: absolute service-clock tick (ms under the wall clock).
//! - `retries`: per-request override of the retry budget.
//! - `kill_at` / `panic_at` / `cancel_at`: fault injection at that
//!   kernel-retirement boundary, first attempt only (testing).
//!
//! Response schema:
//!
//! ```json
//! {"id": 1, "status": "ok", "attempts": 1, "shed": false, "report": {...}}
//! {"id": 2, "status": "deadline", "attempts": 1, "shed": false, "error": "..."}
//! ```
//!
//! `status` is `ok`, `shed`, or a [`crate::error::ServeError::label`]:
//! `cancelled`, `deadline`, `overloaded`, `crash`, `retries_exhausted`,
//! `failed`, `shutdown` — plus `bad_request` for lines that fail to
//! parse.

use crate::service::{RunOutcome, RunRequest};
use blockmaestro::{ExecMode, FaultPlan};
use bm_trace::json::{parse, Json};
use bm_workloads::{suite, Scale};

/// Parse one request line into a [`RunRequest`].
///
/// # Errors
///
/// A human-readable message naming the offending field.
pub fn parse_request(line: &str) -> Result<RunRequest, String> {
    let doc = parse(line)?;
    let obj = doc.as_obj().ok_or("request must be a JSON object")?;
    for key in obj.keys() {
        match key.as_str() {
            "id" | "app" | "scale" | "mode" | "devices" | "deadline" | "retries" | "kill_at"
            | "panic_at" | "cancel_at" => {}
            other => return Err(format!("unknown request field {other:?}")),
        }
    }
    let id = doc
        .get("id")
        .and_then(Json::as_u64)
        .ok_or("missing or non-integer \"id\"")?;
    let name = doc
        .get("app")
        .and_then(Json::as_str)
        .ok_or("missing \"app\"")?;
    let scale = match doc.get("scale").and_then(Json::as_str) {
        None | Some("small") => Scale::Small,
        Some("full") => Scale::Full,
        Some(other) => return Err(format!("unknown scale {other:?}")),
    };
    let bench = suite()
        .into_iter()
        .find(|b| b.name.eq_ignore_ascii_case(name))
        .ok_or_else(|| format!("unknown app {name:?}"))?;
    let mode = match doc.get("mode").and_then(Json::as_str) {
        None => ExecMode::ConsumerPriority { window: 3 },
        Some(s) => parse_mode(s)?,
    };
    let u32_field = |key: &str| -> Result<Option<u32>, String> {
        match doc.get(key) {
            None => Ok(None),
            Some(v) => v
                .as_u64()
                .and_then(|n| u32::try_from(n).ok())
                .map(Some)
                .ok_or_else(|| format!("non-integer {key:?}")),
        }
    };
    let deadline = match doc.get("deadline") {
        None => None,
        Some(v) => Some(v.as_u64().ok_or("non-integer \"deadline\"")?),
    };
    let fault = FaultPlan {
        kill_at_kernel: u32_field("kill_at")?,
        panic_at_kernel: u32_field("panic_at")?,
        cancel_at_kernel: u32_field("cancel_at")?,
        ..FaultPlan::default()
    };
    Ok(RunRequest {
        id,
        app: (bench.build)(scale),
        mode,
        hazard: bm_depgraph::HazardMode::Raw,
        devices: u32_field("devices")?.unwrap_or(1).max(1),
        deadline,
        max_retries: u32_field("retries")?,
        fault,
    })
}

/// Parse a mode string (`"consumer:3"`, `"baseline"`, …).
///
/// # Errors
///
/// A message naming the unrecognized mode.
pub fn parse_mode(s: &str) -> Result<ExecMode, String> {
    let (head, window) = match s.split_once(':') {
        Some((head, w)) => {
            let window: u32 = w.parse().map_err(|_| format!("bad window in mode {s:?}"))?;
            (head, Some(window))
        }
        None => (s, None),
    };
    let w = window.unwrap_or(3);
    match head {
        "baseline" => Ok(ExecMode::Baseline),
        "ideal" => Ok(ExecMode::IdealBaseline),
        "graph" => Ok(ExecMode::GraphLaunch),
        "prelaunch" => Ok(ExecMode::PreLaunch { window: w }),
        "producer" => Ok(ExecMode::ProducerPriority { window: w }),
        "consumer" => Ok(ExecMode::ConsumerPriority { window: w }),
        other => Err(format!("unknown mode {other:?}")),
    }
}

/// Render one outcome as a response line (no trailing newline).
pub fn response_line(outcome: &RunOutcome) -> String {
    let mut fields = vec![
        ("id", Json::u64(outcome.id)),
        ("status", Json::str(outcome.label())),
        ("attempts", Json::u64(u64::from(outcome.attempts))),
        ("shed", Json::Bool(outcome.shed)),
    ];
    match &outcome.result {
        Ok(report) => fields.push(("report", report.to_json())),
        Err(e) => fields.push(("error", Json::str(e.to_string()))),
    }
    Json::obj(fields).to_string()
}

/// Render a parse failure as a `bad_request` response line.
pub fn bad_request_line(id: Option<u64>, message: &str) -> String {
    Json::obj([
        ("id", Json::u64(id.unwrap_or(0))),
        ("status", Json::str("bad_request")),
        ("error", Json::str(message)),
    ])
    .to_string()
}

/// Best-effort id extraction from an unparsable-as-request line, so the
/// error response can still be correlated.
pub fn peek_id(line: &str) -> Option<u64> {
    parse(line).ok()?.get("id")?.as_u64()
}

impl RunOutcome {
    /// The outcome as a wire response (`bmserve`'s output line).
    pub fn to_response(&self) -> String {
        response_line(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ServeError;

    #[test]
    fn parses_a_full_request() {
        let req = parse_request(
            r#"{"id": 7, "app": "gaussian", "scale": "small", "mode": "producer:2",
                "devices": 2, "deadline": 99, "retries": 1, "panic_at": 2}"#,
        )
        .unwrap();
        assert_eq!(req.id, 7);
        assert_eq!(req.mode, ExecMode::ProducerPriority { window: 2 });
        assert_eq!(req.devices, 2);
        assert_eq!(req.deadline, Some(99));
        assert_eq!(req.max_retries, Some(1));
        assert_eq!(req.fault.panic_at_kernel, Some(2));
        assert_eq!(req.fault.kill_at_kernel, None);
    }

    #[test]
    fn rejects_unknown_fields_apps_and_modes() {
        assert!(parse_request(r#"{"id": 1, "app": "GAUSSIAN", "bogus": 1}"#)
            .unwrap_err()
            .contains("unknown request field"));
        assert!(parse_request(r#"{"id": 1, "app": "NOPE"}"#)
            .unwrap_err()
            .contains("unknown app"));
        assert!(parse_request(r#"{"app": "GAUSSIAN"}"#)
            .unwrap_err()
            .contains("\"id\""));
        assert!(
            parse_request(r#"{"id": 1, "app": "GAUSSIAN", "devices": "two"}"#)
                .unwrap_err()
                .contains("devices")
        );
        let defaulted = parse_request(r#"{"id": 1, "app": "GAUSSIAN"}"#).unwrap();
        assert_eq!(defaulted.devices, 1);
        assert!(parse_mode("warp:9").unwrap_err().contains("unknown mode"));
        assert!(parse_mode("consumer:x").unwrap_err().contains("bad window"));
    }

    #[test]
    fn response_lines_round_trip_status() {
        let out = RunOutcome {
            id: 3,
            attempts: 2,
            shed: false,
            result: Err(ServeError::DeadlineExceeded { tick: 50 }),
        };
        let line = response_line(&out);
        let doc = parse(&line).unwrap();
        assert_eq!(doc.get("id").and_then(Json::as_u64), Some(3));
        assert_eq!(doc.get("status").and_then(Json::as_str), Some("deadline"));
        assert_eq!(doc.get("attempts").and_then(Json::as_u64), Some(2));
        assert!(doc.get("error").is_some());
        let bad = bad_request_line(peek_id(r#"{"id": 9}"#), "nope");
        let doc = parse(&bad).unwrap();
        assert_eq!(doc.get("id").and_then(Json::as_u64), Some(9));
        assert_eq!(
            doc.get("status").and_then(Json::as_str),
            Some("bad_request")
        );
    }
}
