//! Circuit-breaking admission, keyed by application fingerprint.
//!
//! An application whose requests keep failing terminally stops consuming
//! full-pipeline capacity: after `failure_threshold` consecutive failures
//! its breaker opens, and further requests are shed (run on the fast
//! fully-connected-barrier fallback) or rejected. After `cooldown` ticks
//! the breaker half-opens and admits exactly one probe request; a clean
//! probe closes the breaker, a failed probe re-opens it for another
//! cooldown.
//!
//! State machine: `closed → open → half-open → {closed, open}`.
//!
//! Cancellations and deadline misses do **not** count as failures — they
//! say the client gave up, not that the application is unhealthy.

use std::collections::HashMap;

/// Breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive terminal failures that open the breaker.
    pub failure_threshold: u32,
    /// Ticks an open breaker waits before half-opening.
    pub cooldown: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown: 1000,
        }
    }
}

/// Breaker position for one application fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests admitted normally.
    Closed,
    /// Tripped: requests shed/rejected until the cooldown elapses.
    Open,
    /// Probing: one request admitted to test recovery.
    HalfOpen,
}

impl BreakerState {
    /// Stable label used on [`bm_trace::TraceEvent::BreakerTransition`].
    pub fn label(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// What admission decided for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Run the full pipeline.
    Admit,
    /// Run the full pipeline as the half-open probe; its outcome moves
    /// the breaker.
    Probe,
    /// Don't run the full pipeline: shed to the barrier fallback or
    /// reject.
    Shed,
}

/// A state change `(from, to)` to surface as a trace event.
pub type Transition = (BreakerState, BreakerState);

#[derive(Debug)]
struct AppBreaker {
    state: BreakerState,
    consecutive_failures: u32,
    open_until: u64,
    probe_in_flight: bool,
}

impl Default for AppBreaker {
    fn default() -> Self {
        AppBreaker {
            state: BreakerState::Closed,
            consecutive_failures: 0,
            open_until: 0,
            probe_in_flight: false,
        }
    }
}

/// Per-app-fingerprint circuit breakers.
#[derive(Debug)]
pub struct Breaker {
    cfg: BreakerConfig,
    apps: HashMap<u64, AppBreaker>,
}

impl Breaker {
    /// Empty registry under `cfg`.
    pub fn new(cfg: BreakerConfig) -> Self {
        Breaker {
            cfg,
            apps: HashMap::new(),
        }
    }

    /// Current state for `app_fp` (closed if never seen).
    pub fn state(&self, app_fp: u64) -> BreakerState {
        self.apps
            .get(&app_fp)
            .map(|a| a.state)
            .unwrap_or(BreakerState::Closed)
    }

    /// Decide admission for one request at tick `now`; returns the
    /// decision plus a transition to trace, if one happened.
    pub fn admit(&mut self, app_fp: u64, now: u64) -> (Admission, Option<Transition>) {
        let app = self.apps.entry(app_fp).or_default();
        match app.state {
            BreakerState::Closed => (Admission::Admit, None),
            BreakerState::Open if now >= app.open_until => {
                app.state = BreakerState::HalfOpen;
                app.probe_in_flight = true;
                (
                    Admission::Probe,
                    Some((BreakerState::Open, BreakerState::HalfOpen)),
                )
            }
            BreakerState::Open => (Admission::Shed, None),
            BreakerState::HalfOpen if !app.probe_in_flight => {
                app.probe_in_flight = true;
                (Admission::Probe, None)
            }
            BreakerState::HalfOpen => (Admission::Shed, None),
        }
    }

    /// Give a half-open probe slot back without moving the breaker —
    /// used when the probe was cancelled, which says nothing about the
    /// app's health.
    pub fn abandon_probe(&mut self, app_fp: u64) {
        if let Some(app) = self.apps.get_mut(&app_fp) {
            if app.state == BreakerState::HalfOpen {
                app.probe_in_flight = false;
            }
        }
    }

    /// Record a terminal outcome of an admitted (non-shed) request.
    pub fn record(&mut self, app_fp: u64, success: bool, now: u64) -> Option<Transition> {
        let cfg = self.cfg;
        let app = self.apps.entry(app_fp).or_default();
        if app.state == BreakerState::HalfOpen {
            app.probe_in_flight = false;
        }
        if success {
            app.consecutive_failures = 0;
            if app.state != BreakerState::Closed {
                let from = app.state;
                app.state = BreakerState::Closed;
                return Some((from, BreakerState::Closed));
            }
            return None;
        }
        app.consecutive_failures += 1;
        let trip = match app.state {
            BreakerState::HalfOpen => true,
            BreakerState::Closed => app.consecutive_failures >= cfg.failure_threshold,
            BreakerState::Open => false,
        };
        if trip {
            let from = app.state;
            app.state = BreakerState::Open;
            app.open_until = now.saturating_add(cfg.cooldown);
            return Some((from, BreakerState::Open));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FP: u64 = 0xAB;

    #[test]
    fn closed_to_open_to_half_open_to_closed() {
        let cfg = BreakerConfig {
            failure_threshold: 2,
            cooldown: 100,
        };
        let mut b = Breaker::new(cfg);
        assert_eq!(b.admit(FP, 0).0, Admission::Admit);
        assert_eq!(b.record(FP, false, 0), None);
        assert_eq!(
            b.record(FP, false, 1),
            Some((BreakerState::Closed, BreakerState::Open))
        );
        // Open: shed until the cooldown elapses.
        assert_eq!(b.admit(FP, 50).0, Admission::Shed);
        assert_eq!(b.state(FP), BreakerState::Open);
        // Cooldown elapsed: half-open, exactly one probe.
        let (adm, tr) = b.admit(FP, 101);
        assert_eq!(adm, Admission::Probe);
        assert_eq!(tr, Some((BreakerState::Open, BreakerState::HalfOpen)));
        assert_eq!(b.admit(FP, 101).0, Admission::Shed, "only one probe");
        // Clean probe closes it.
        assert_eq!(
            b.record(FP, true, 102),
            Some((BreakerState::HalfOpen, BreakerState::Closed))
        );
        assert_eq!(b.admit(FP, 103).0, Admission::Admit);
    }

    #[test]
    fn failed_probe_reopens() {
        let cfg = BreakerConfig {
            failure_threshold: 1,
            cooldown: 10,
        };
        let mut b = Breaker::new(cfg);
        b.record(FP, false, 0);
        assert_eq!(b.state(FP), BreakerState::Open);
        assert_eq!(b.admit(FP, 10).0, Admission::Probe);
        assert_eq!(
            b.record(FP, false, 11),
            Some((BreakerState::HalfOpen, BreakerState::Open))
        );
        assert_eq!(b.admit(FP, 15).0, Admission::Shed);
        // And the new cooldown counts from the re-open.
        assert_eq!(b.admit(FP, 21).0, Admission::Probe);
    }

    #[test]
    fn abandoned_probe_frees_the_slot() {
        let mut b = Breaker::new(BreakerConfig {
            failure_threshold: 1,
            cooldown: 10,
        });
        b.record(FP, false, 0);
        assert_eq!(b.admit(FP, 10).0, Admission::Probe);
        b.abandon_probe(FP);
        assert_eq!(b.admit(FP, 11).0, Admission::Probe);
        assert_eq!(b.state(FP), BreakerState::HalfOpen);
    }

    #[test]
    fn apps_are_isolated() {
        let mut b = Breaker::new(BreakerConfig {
            failure_threshold: 1,
            cooldown: 10,
        });
        b.record(1, false, 0);
        assert_eq!(b.state(1), BreakerState::Open);
        assert_eq!(b.admit(2, 0).0, Admission::Admit);
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let mut b = Breaker::new(BreakerConfig {
            failure_threshold: 2,
            cooldown: 10,
        });
        b.record(FP, false, 0);
        b.record(FP, true, 1);
        b.record(FP, false, 2);
        assert_eq!(b.state(FP), BreakerState::Closed);
    }
}
