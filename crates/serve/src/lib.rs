//! # bm-serve — deadline-aware concurrent run service
//!
//! Turns the single-shot BlockMaestro pipeline into a small, robust run
//! service: N crash-isolated workers drain a bounded queue of app-run
//! requests, each executed through the existing checkpointed pipeline
//! with a cooperative [`bm_ptx::cancel::CancelToken`] threaded through
//! the launch-time analysis ladder and the DES engine.
//!
//! The four robustness mechanisms, each deterministic under a
//! [`VirtualClock`]:
//!
//! 1. **Cooperative cancellation + deadlines** — tokens observed at
//!    analysis-phase and kernel-retirement boundaries; typed
//!    [`ServeError::Cancelled`] / [`ServeError::DeadlineExceeded`]
//!    outcomes with a final checkpoint.
//! 2. **Deterministic retry** — capped exponential backoff
//!    ([`RetryPolicy`]) for transient failures (simulated crashes, guard
//!    quarantine exhaustion, worker panics), resuming from the last
//!    valid snapshot; a retried run is bit-identical to an uninterrupted
//!    one.
//! 3. **Circuit-breaking admission** — a per-app-fingerprint breaker
//!    (closed → open → half-open → closed, [`Breaker`]) sheds repeat
//!    offenders to a fast fully-connected-barrier fallback or rejects
//!    them with [`ServeError::Overloaded`].
//! 4. **Crash isolation** — `catch_unwind` around every attempt; the
//!    poisoned attempt state is disposed, only durable checkpoints
//!    survive, and nothing leaks between requests on a reused worker.
//! 5. **Device-group placement** — a request may ask for a multi-device
//!    group (`RunRequest::devices`); the worker holds the whole group
//!    from a shared pool ([`ServeConfig::total_devices`]) and runs it
//!    through `bm-multi`'s TB-grain sharding. Impossible groups are
//!    rejected with the typed [`ServeError::Placement`].
//!
//! The `bmserve` binary speaks newline-delimited JSON ([`proto`]) over
//! stdin/stdout or a Unix socket.

pub mod breaker;
pub mod clock;
pub mod error;
pub mod proto;
pub mod retry;
pub mod service;

pub use breaker::{Admission, Breaker, BreakerConfig, BreakerState};
pub use clock::{ServiceClock, VirtualClock, WallClock};
pub use error::ServeError;
pub use retry::RetryPolicy;
pub use service::{Pending, RunOutcome, RunRequest, RunService, ServeConfig};
