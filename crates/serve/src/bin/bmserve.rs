//! `bmserve` — the BlockMaestro run service over newline-delimited JSON.
//!
//! ```text
//! bmserve [--workers N] [--queue N] [--devices N] [--socket PATH]
//!         [--virtual-clock] [--no-shed] [--retries N]
//! ```
//!
//! Without `--socket`, requests are read from stdin and responses
//! written to stdout (one JSON object per line, completion order);
//! EOF drains in-flight work and exits. With `--socket PATH`, a Unix
//! socket listener serves each connection the same way.
//!
//! `--virtual-clock` times deadlines/backoffs on a virtual clock that
//! only moves when waiters sleep — every run of the same request stream
//! then produces the same retry/backoff timeline (useful for tests;
//! deadlines given in virtual ticks).
//!
//! `--devices N` sets the simulated device pool a request's `"devices"`
//! group is placed onto (default 4).

use bm_serve::proto::{bad_request_line, parse_request, peek_id};
use bm_serve::{RunService, ServeConfig, ServiceClock, VirtualClock, WallClock};
use bm_simt::GpuConfig;
use std::io::{BufRead, BufReader, Write};
use std::sync::{Arc, Mutex};

fn usage() -> ! {
    eprintln!(
        "usage: bmserve [--workers N] [--queue N] [--devices N] [--socket PATH] \
         [--virtual-clock] [--no-shed] [--retries N]"
    );
    std::process::exit(2);
}

fn main() {
    let mut scfg = ServeConfig::default();
    let mut socket: Option<String> = None;
    let mut virtual_clock = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut num = |what: &str| -> usize {
            args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("bmserve: {what} needs a number");
                usage()
            })
        };
        match arg.as_str() {
            "--workers" => scfg.workers = num("--workers").max(1),
            "--queue" => scfg.queue_depth = num("--queue").max(1),
            "--retries" => scfg.retry.max_retries = num("--retries") as u32,
            "--devices" => scfg.total_devices = num("--devices").max(1) as u32,
            "--socket" => socket = Some(args.next().unwrap_or_else(|| usage())),
            "--virtual-clock" => virtual_clock = true,
            "--no-shed" => scfg.shed_to_barrier = false,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("bmserve: unknown flag {other:?}");
                usage()
            }
        }
    }
    let clock: Arc<dyn ServiceClock> = if virtual_clock {
        VirtualClock::new()
    } else {
        WallClock::new()
    };
    let service = Arc::new(RunService::start(GpuConfig::small(), scfg, clock));

    match socket {
        None => {
            let stdout: Arc<Mutex<dyn Write + Send>> = Arc::new(Mutex::new(std::io::stdout()));
            serve_stream(&service, std::io::stdin().lock(), &stdout);
        }
        Some(path) => {
            let _ = std::fs::remove_file(&path);
            let listener = std::os::unix::net::UnixListener::bind(&path).unwrap_or_else(|e| {
                eprintln!("bmserve: cannot bind {path}: {e}");
                std::process::exit(1);
            });
            eprintln!("bmserve: listening on {path}");
            for conn in listener.incoming() {
                let Ok(conn) = conn else { continue };
                let service = Arc::clone(&service);
                std::thread::spawn(move || {
                    let reader = BufReader::new(conn.try_clone().expect("clone socket"));
                    let writer: Arc<Mutex<dyn Write + Send>> = Arc::new(Mutex::new(conn));
                    serve_stream(&service, reader, &writer);
                });
            }
        }
    }
}

/// Read request lines until EOF; write each response as it completes.
fn serve_stream(
    service: &Arc<RunService>,
    reader: impl BufRead,
    writer: &Arc<Mutex<dyn Write + Send>>,
) {
    let mut waiters = Vec::new();
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let req = match parse_request(&line) {
            Ok(req) => req,
            Err(msg) => {
                write_line(writer, &bad_request_line(peek_id(&line), &msg));
                continue;
            }
        };
        let id = req.id;
        match service.submit(req) {
            Ok(pending) => {
                let writer = Arc::clone(writer);
                waiters.push(std::thread::spawn(move || {
                    let outcome = pending.wait();
                    write_line(&writer, &outcome.to_response());
                }));
            }
            Err(e) => {
                let refused = bm_serve::RunOutcome {
                    id,
                    attempts: 0,
                    shed: false,
                    result: Err(e),
                };
                write_line(writer, &refused.to_response());
            }
        }
    }
    for w in waiters {
        let _ = w.join();
    }
}

fn write_line(writer: &Arc<Mutex<dyn Write + Send>>, line: &str) {
    let mut w = writer.lock().unwrap();
    let _ = writeln!(w, "{line}");
    let _ = w.flush();
}
