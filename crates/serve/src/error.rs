//! Typed terminal outcomes of a served request.

use std::fmt;

/// Why a served request did not return a clean report.
///
/// Every request terminates with either a `RunReport` or exactly one of
/// these — the service never panics outward, hangs, or silently drops a
/// request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The client (or the service shutdown path) cancelled the request.
    /// A final checkpoint at the last completed boundary is preserved.
    Cancelled {
        /// Service-clock tick at which the cancellation surfaced.
        tick: u64,
    },
    /// The request's deadline passed before the run completed.
    DeadlineExceeded {
        /// Service-clock tick at which the miss surfaced.
        tick: u64,
    },
    /// Admission refused the request: the queue is full, or the app's
    /// circuit breaker is open and shedding is disabled.
    Overloaded {
        /// What refused it.
        reason: String,
    },
    /// The request asked for a device group larger than the service
    /// owns ([`crate::service::ServeConfig::total_devices`]). Unlike
    /// [`ServeError::Overloaded`] this can never succeed on retry — the
    /// placement is impossible, not merely contended.
    Placement {
        /// Devices the request asked for.
        requested: u32,
        /// Devices the service owns.
        total: u32,
    },
    /// The worker panicked on every allowed attempt. The panic never
    /// escapes the worker; the poisoned run state is disposed and only
    /// checkpoints survive between attempts.
    WorkerCrash {
        /// Attempts consumed (initial + retries).
        attempts: u32,
        /// The last panic's message.
        message: String,
    },
    /// A transient pipeline failure persisted through every allowed retry.
    RetriesExhausted {
        /// Attempts consumed (initial + retries).
        attempts: u32,
        /// The last attempt's error.
        last: String,
    },
    /// A permanent pipeline failure (structural/toolchain error) — not
    /// retried, surfaced on the first attempt that hit it.
    Failed {
        /// Attempts consumed when it surfaced.
        attempts: u32,
        /// The pipeline error.
        error: String,
    },
    /// The service shut down before the request ran.
    Shutdown,
}

impl ServeError {
    /// Stable machine-readable label, used as the wire `status` and as the
    /// `serve_outcome_*` counter suffix.
    pub fn label(&self) -> &'static str {
        match self {
            ServeError::Cancelled { .. } => "cancelled",
            ServeError::DeadlineExceeded { .. } => "deadline",
            ServeError::Overloaded { .. } => "overloaded",
            ServeError::Placement { .. } => "placement",
            ServeError::WorkerCrash { .. } => "crash",
            ServeError::RetriesExhausted { .. } => "retries_exhausted",
            ServeError::Failed { .. } => "failed",
            ServeError::Shutdown => "shutdown",
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Cancelled { tick } => write!(f, "cancelled at tick {tick}"),
            ServeError::DeadlineExceeded { tick } => {
                write!(f, "deadline exceeded at tick {tick}")
            }
            ServeError::Overloaded { reason } => write!(f, "overloaded: {reason}"),
            ServeError::Placement { requested, total } => write!(
                f,
                "placement impossible: {requested} devices requested, service owns {total}"
            ),
            ServeError::WorkerCrash { attempts, message } => {
                write!(f, "worker crashed on all {attempts} attempts: {message}")
            }
            ServeError::RetriesExhausted { attempts, last } => {
                write!(f, "failed after {attempts} attempts: {last}")
            }
            ServeError::Failed { attempts, error } => {
                write!(f, "permanent failure (attempt {attempts}): {error}")
            }
            ServeError::Shutdown => f.write_str("service shut down"),
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        assert_eq!(ServeError::Cancelled { tick: 1 }.label(), "cancelled");
        assert_eq!(ServeError::DeadlineExceeded { tick: 1 }.label(), "deadline");
        assert_eq!(ServeError::Shutdown.label(), "shutdown");
        let placement = ServeError::Placement {
            requested: 8,
            total: 4,
        };
        assert_eq!(placement.label(), "placement");
        assert!(placement.to_string().contains("8 devices requested"));
        assert!(ServeError::WorkerCrash {
            attempts: 3,
            message: "boom".into()
        }
        .to_string()
        .contains("all 3 attempts"));
    }
}
