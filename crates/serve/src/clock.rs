//! The service clock: one tick source for deadlines, backoff waits, and
//! breaker cooldowns.
//!
//! Everything time-dependent in the serve layer goes through
//! [`ServiceClock`], so tests substitute a [`VirtualClock`] and the whole
//! service — deadline firings, retry backoff sequences, circuit-breaker
//! cooldowns — becomes a deterministic function of the request stream.
//! The production binary uses [`WallClock`] (millisecond ticks).
//!
//! Deadlines are *pushed*, not polled: a token registered with
//! [`ServiceClock::expire_at`] is expired by the clock the moment its
//! tick is reached, and the run observes the fired token cooperatively at
//! its next analysis-phase or kernel-retirement boundary.

use bm_ptx::cancel::CancelToken;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// A monotonic tick source with deadline registration.
pub trait ServiceClock: Send + Sync {
    /// Current tick.
    fn now(&self) -> u64;

    /// Arrange for `token` to [`CancelToken::expire`] once `now() >= tick`.
    /// A tick already in the past expires the token immediately.
    fn expire_at(&self, tick: u64, token: CancelToken);

    /// Block until `now() >= tick`. Used for retry backoff.
    fn sleep_until(&self, tick: u64);
}

struct VirtualState {
    now: u64,
    /// Registered deadlines: `(due_tick, token)`.
    pending: Vec<(u64, CancelToken)>,
}

/// Deterministic test clock: time moves only through [`advance`]
/// (external control) or [`sleep_until`] (a waiter jumps virtual time
/// forward to its own wake tick — so retry backoffs complete without any
/// cooperating thread). Due deadlines fire synchronously inside the tick
/// movement, before any waiter wakes.
///
/// [`advance`]: VirtualClock::advance
/// [`sleep_until`]: ServiceClock::sleep_until
pub struct VirtualClock {
    state: Mutex<VirtualState>,
    moved: Condvar,
}

impl VirtualClock {
    /// A clock at tick 0 with no pending deadlines.
    pub fn new() -> Arc<Self> {
        Arc::new(VirtualClock {
            state: Mutex::new(VirtualState {
                now: 0,
                pending: Vec::new(),
            }),
            moved: Condvar::new(),
        })
    }

    /// Move time forward `ticks`, firing every deadline that comes due.
    pub fn advance(&self, ticks: u64) {
        let mut st = self.state.lock().unwrap();
        st.now = st.now.saturating_add(ticks);
        Self::fire_due(&mut st);
        self.moved.notify_all();
    }

    fn fire_due(st: &mut VirtualState) {
        let now = st.now;
        st.pending.retain(|(due, token)| {
            if *due <= now {
                token.expire();
                false
            } else {
                true
            }
        });
    }
}

impl ServiceClock for VirtualClock {
    fn now(&self) -> u64 {
        self.state.lock().unwrap().now
    }

    fn expire_at(&self, tick: u64, token: CancelToken) {
        let mut st = self.state.lock().unwrap();
        if tick <= st.now {
            token.expire();
        } else {
            st.pending.push((tick, token));
        }
    }

    fn sleep_until(&self, tick: u64) {
        let mut st = self.state.lock().unwrap();
        if st.now < tick {
            // Virtual time: the sleeper itself drags the clock forward, so
            // backoff waits terminate without an external advance() — and
            // any deadline inside the jumped-over span fires first.
            st.now = tick;
            Self::fire_due(&mut st);
            self.moved.notify_all();
        }
    }
}

struct WallState {
    pending: Vec<(u64, CancelToken)>,
    watcher_running: bool,
}

/// Wall-clock ticks: milliseconds since construction. Deadlines are fired
/// by a lazily-spawned watcher thread, so a deadline interrupts a running
/// request at its next cooperative boundary even though the worker thread
/// is busy simulating.
pub struct WallClock {
    start: Instant,
    state: Arc<(Mutex<WallState>, Condvar)>,
}

impl WallClock {
    /// A clock whose tick 0 is now.
    pub fn new() -> Arc<Self> {
        Arc::new(WallClock {
            start: Instant::now(),
            state: Arc::new((
                Mutex::new(WallState {
                    pending: Vec::new(),
                    watcher_running: false,
                }),
                Condvar::new(),
            )),
        })
    }

    fn spawn_watcher(&self) {
        let state = Arc::clone(&self.state);
        let start = self.start;
        std::thread::spawn(move || {
            let (lock, cv) = &*state;
            let mut st = lock.lock().unwrap();
            loop {
                let now = start.elapsed().as_millis() as u64;
                st.pending.retain(|(due, token)| {
                    if *due <= now {
                        token.expire();
                        false
                    } else {
                        true
                    }
                });
                let Some(next) = st.pending.iter().map(|(due, _)| *due).min() else {
                    // Nothing pending: exit; a new registration respawns us.
                    st.watcher_running = false;
                    return;
                };
                let wait = Duration::from_millis(next.saturating_sub(now).max(1));
                st = cv.wait_timeout(st, wait).unwrap().0;
            }
        });
    }
}

impl ServiceClock for WallClock {
    fn now(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    fn expire_at(&self, tick: u64, token: CancelToken) {
        if tick <= self.now() {
            token.expire();
            return;
        }
        let (lock, cv) = &*self.state;
        let mut st = lock.lock().unwrap();
        st.pending.push((tick, token));
        if !st.watcher_running {
            st.watcher_running = true;
            self.spawn_watcher();
        }
        cv.notify_all();
    }

    fn sleep_until(&self, tick: u64) {
        let now = self.now();
        if tick > now {
            std::thread::sleep(Duration::from_millis(tick - now));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_fires_deadlines_on_advance() {
        let clock = VirtualClock::new();
        let t = CancelToken::new();
        clock.expire_at(10, t.clone());
        clock.advance(9);
        assert!(!t.is_fired());
        clock.advance(1);
        assert_eq!(
            t.fired(),
            Some(bm_ptx::cancel::CancelCause::DeadlineExceeded)
        );
    }

    #[test]
    fn virtual_clock_expires_past_deadlines_immediately() {
        let clock = VirtualClock::new();
        clock.advance(5);
        let t = CancelToken::new();
        clock.expire_at(5, t.clone());
        assert!(t.is_fired());
    }

    #[test]
    fn virtual_sleep_drags_time_and_fires_skipped_deadlines() {
        let clock = VirtualClock::new();
        let t = CancelToken::new();
        clock.expire_at(7, t.clone());
        clock.sleep_until(20);
        assert_eq!(clock.now(), 20);
        assert!(t.is_fired());
        // Sleeping into the past is a no-op.
        clock.sleep_until(3);
        assert_eq!(clock.now(), 20);
    }

    #[test]
    fn wall_clock_fires_deadlines_asynchronously() {
        let clock = WallClock::new();
        let t = CancelToken::new();
        clock.expire_at(clock.now() + 5, t.clone());
        let deadline = Instant::now() + Duration::from_secs(5);
        while !t.is_fired() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(t.is_fired(), "watcher never fired the deadline");
    }
}
