//! Deterministic retry with capped exponential backoff.
//!
//! No jitter: served runs are simulations, so retries contend only on
//! host CPU, and reproducibility of the full service timeline under a
//! [`crate::clock::VirtualClock`] is worth more than thundering-herd
//! smoothing. The backoff sequence for a policy is a pure function of the
//! retry index: `min(base << index, cap)` ticks.

/// Retry budget and backoff shape for transient failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries allowed *after* the initial attempt.
    pub max_retries: u32,
    /// Backoff before the first retry, in service-clock ticks.
    pub base_backoff: u64,
    /// Ceiling on any single backoff, in service-clock ticks.
    pub max_backoff: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            base_backoff: 16,
            max_backoff: 256,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `index` (0-based): capped exponential.
    pub fn backoff(&self, index: u32) -> u64 {
        if self.base_backoff == 0 {
            return 0;
        }
        if index >= self.base_backoff.leading_zeros() {
            // The shift would lose bits: already past any u64 cap.
            return self.max_backoff;
        }
        (self.base_backoff << index).min(self.max_backoff)
    }

    /// Total attempts allowed (initial + retries), always at least 1.
    pub fn max_attempts(&self) -> u32 {
        1 + self.max_retries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_then_caps() {
        let p = RetryPolicy {
            max_retries: 10,
            base_backoff: 16,
            max_backoff: 100,
        };
        assert_eq!(p.backoff(0), 16);
        assert_eq!(p.backoff(1), 32);
        assert_eq!(p.backoff(2), 64);
        assert_eq!(p.backoff(3), 100);
        assert_eq!(p.backoff(63), 100);
        assert_eq!(p.backoff(64), 100, "overflowing shift saturates to cap");
        assert_eq!(p.max_attempts(), 11);
    }

    #[test]
    fn sequence_is_reproducible() {
        let p = RetryPolicy::default();
        let a: Vec<u64> = (0..6).map(|i| p.backoff(i)).collect();
        let b: Vec<u64> = (0..6).map(|i| p.backoff(i)).collect();
        assert_eq!(a, b);
        assert_eq!(a, vec![16, 32, 64, 128, 256, 256]);
    }
}
