//! End-to-end service behavior under the virtual clock: every timeline
//! below — retries, backoffs, deadlines, breaker trips — is a
//! deterministic function of the submitted request stream.

use blockmaestro::{try_run_app_with, ExecMode, FaultPlan, RunReport};
use bm_cmdq::{ApiCall, Application};
use bm_depgraph::HazardMode;
use bm_ptx::kernel::{ArgValue, Dim3, Launch};
use bm_ptx::mem::AddressSpace;
use bm_ptx::parser::parse_kernel;
use bm_serve::{
    BreakerConfig, RetryPolicy, RunOutcome, RunRequest, RunService, ServeConfig, ServeError,
    ServiceClock, VirtualClock,
};
use bm_simt::GpuConfig;
use std::collections::HashMap;
use std::sync::Arc;

/// A small RAW chain (4 dependent kernels, 8 TBs x 64 threads) — cheap
/// enough to run dozens of times, deep enough to have interior
/// kernel-retirement boundaries for fault injection.
fn chain_app() -> Application {
    let tbs = 8u32;
    let n = tbs as u64 * 64;
    let mut space = AddressSpace::new();
    let allocs: Vec<_> = (0..5).map(|_| space.alloc(4 * n)).collect();
    let k = Arc::new(
        parse_kernel(
            r#".entry link(.param .u64 SRC, .param .u64 DST) {
                 ld.param.u64 %rd1, [SRC];
                 ld.param.u64 %rd2, [DST];
                 mov.u32 %r1, %ctaid.x;
                 mov.u32 %r2, %ntid.x;
                 mov.u32 %r3, %tid.x;
                 mad.lo.u32 %r4, %r1, %r2, %r3;
                 mul.wide.u32 %rd3, %r4, 4;
                 add.u64 %rd4, %rd1, %rd3;
                 ld.global.f32 %f1, [%rd4];
                 mul.f32 %f2, %f1, 0f40000000;
                 add.u64 %rd5, %rd2, %rd3;
                 st.global.f32 [%rd5], %f2;
                 ret;
               }"#,
        )
        .unwrap(),
    );
    let mut host_data = HashMap::new();
    host_data.insert(
        allocs[0].id,
        (0..n).map(|i| i as f32 * 0.25).collect::<Vec<_>>(),
    );
    let mut calls = vec![ApiCall::MemcpyH2D {
        alloc: allocs[0].id,
        bytes: 4 * n,
    }];
    calls.extend((0..4).map(|i| {
        ApiCall::KernelLaunch(Launch::new(
            k.clone(),
            Dim3::x(tbs),
            Dim3::x(64),
            vec![
                ArgValue::Ptr(allocs[i].base),
                ArgValue::Ptr(allocs[i + 1].base),
            ],
        ))
    }));
    Application {
        name: "serve-chain".into(),
        space,
        calls,
        host_data,
    }
}

fn reference() -> RunReport {
    try_run_app_with(
        &GpuConfig::small(),
        &chain_app(),
        ExecMode::ConsumerPriority { window: 3 },
        HazardMode::Raw,
    )
    .unwrap()
}

fn one_worker() -> ServeConfig {
    ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    }
}

fn submit_and_wait(service: &RunService, req: RunRequest) -> RunOutcome {
    service.submit(req).expect("admitted").wait()
}

#[test]
fn clean_request_matches_a_direct_run() {
    let clock = VirtualClock::new();
    let service = RunService::start(GpuConfig::small(), one_worker(), clock);
    let out = submit_and_wait(&service, RunRequest::new(1, chain_app()));
    assert_eq!(out.attempts, 1);
    assert!(!out.shed);
    assert_eq!(out.result.as_ref().unwrap(), &reference());
    let kinds: Vec<_> = service.events().iter().map(|e| e.kind()).collect();
    assert_eq!(kinds, vec!["serve_admit", "serve_start", "serve_complete"]);
    let counters = service.counters();
    assert_eq!(counters.counter("serve_outcome_ok"), 1);
    service.shutdown();
}

#[test]
fn injected_kill_retries_on_a_deterministic_backoff_timeline() {
    let clock = VirtualClock::new();
    let service = RunService::start(GpuConfig::small(), one_worker(), Arc::clone(&clock) as _);
    let mut req = RunRequest::new(7, chain_app());
    req.fault = FaultPlan {
        kill_at_kernel: Some(2),
        ..FaultPlan::default()
    };
    let out = submit_and_wait(&service, req);
    assert_eq!(out.attempts, 2, "one kill, one resumed retry");
    assert_eq!(
        out.result.as_ref().unwrap(),
        &reference(),
        "retried run must be bit-identical to an uninterrupted one"
    );
    // The timeline is exact under the virtual clock: admit and first
    // attempt at tick 0, retry scheduled at tick 0 with the base backoff,
    // second attempt at tick 16 after the sleeper drags the clock.
    use bm_trace::TraceEvent as E;
    let events = service.events();
    let starts: Vec<(u64, u32)> = events
        .iter()
        .filter_map(|e| match e {
            E::ServeStart { tick, attempt, .. } => Some((*tick, *attempt)),
            _ => None,
        })
        .collect();
    assert_eq!(starts, vec![(0, 1), (16, 2)]);
    let retries: Vec<(u64, u64)> = events
        .iter()
        .filter_map(|e| match e {
            E::ServeRetry { tick, backoff, .. } => Some((*tick, *backoff)),
            _ => None,
        })
        .collect();
    assert_eq!(retries, vec![(0, RetryPolicy::default().base_backoff)]);
    assert_eq!(clock.now(), 16);
    service.shutdown();
}

#[test]
fn injected_panic_is_contained_and_the_retry_is_bit_identical() {
    let clock = VirtualClock::new();
    let service = RunService::start(GpuConfig::small(), one_worker(), clock);
    let mut req = RunRequest::new(2, chain_app());
    req.fault = FaultPlan {
        panic_at_kernel: Some(2),
        ..FaultPlan::default()
    };
    let out = submit_and_wait(&service, req);
    assert_eq!(out.attempts, 2);
    assert_eq!(out.result.as_ref().unwrap(), &reference());
    // Worker reuse after the panic: a clean request on the same (sole)
    // worker must see no leaked state.
    let clean = submit_and_wait(&service, RunRequest::new(3, chain_app()));
    assert_eq!(clean.attempts, 1);
    assert_eq!(clean.result.as_ref().unwrap(), &reference());
    service.shutdown();
}

#[test]
fn exhausted_retries_surface_the_worker_crash() {
    let clock = VirtualClock::new();
    let scfg = ServeConfig {
        workers: 1,
        retry: RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        },
        ..ServeConfig::default()
    };
    let service = RunService::start(GpuConfig::small(), scfg, clock);
    let mut req = RunRequest::new(4, chain_app());
    req.fault = FaultPlan {
        panic_at_kernel: Some(2),
        ..FaultPlan::default()
    };
    let out = submit_and_wait(&service, req);
    match out.result {
        Err(ServeError::WorkerCrash { attempts, message }) => {
            assert_eq!(attempts, 1);
            assert!(message.contains("injected worker panic"), "{message}");
        }
        other => panic!("expected WorkerCrash, got {other:?}"),
    }
    service.shutdown();
}

#[test]
fn past_deadline_yields_a_typed_miss_without_running() {
    let clock = VirtualClock::new();
    clock.advance(100);
    let service = RunService::start(GpuConfig::small(), one_worker(), Arc::clone(&clock) as _);
    let mut req = RunRequest::new(5, chain_app());
    req.deadline = Some(50); // already past
    let out = submit_and_wait(&service, req);
    assert_eq!(out.attempts, 0, "expired before any attempt started");
    assert_eq!(out.result, Err(ServeError::DeadlineExceeded { tick: 100 }));
    use bm_trace::TraceEvent as E;
    assert!(service
        .events()
        .iter()
        .any(|e| matches!(e, E::ServeCancel { deadline: true, .. })));
    assert_eq!(service.counters().counter("serve_deadline_miss"), 1);
    service.shutdown();
}

#[test]
fn deadline_inside_the_backoff_window_cuts_the_retry_short() {
    let clock = VirtualClock::new();
    let service = RunService::start(GpuConfig::small(), one_worker(), clock);
    let mut req = RunRequest::new(6, chain_app());
    req.fault = FaultPlan {
        kill_at_kernel: Some(2),
        ..FaultPlan::default()
    };
    // The kill fires at virtual tick 0; the retry backs off to tick 16;
    // the deadline at tick 10 fires inside that window.
    req.deadline = Some(10);
    let out = submit_and_wait(&service, req);
    assert_eq!(out.attempts, 1, "the retry was never started");
    assert_eq!(out.result, Err(ServeError::DeadlineExceeded { tick: 16 }));
    service.shutdown();
}

#[test]
fn injected_cancel_surfaces_as_a_typed_cancellation() {
    let clock = VirtualClock::new();
    let service = RunService::start(GpuConfig::small(), one_worker(), clock);
    let mut req = RunRequest::new(8, chain_app());
    req.fault = FaultPlan {
        cancel_at_kernel: Some(2),
        ..FaultPlan::default()
    };
    let out = submit_and_wait(&service, req);
    assert_eq!(out.result, Err(ServeError::Cancelled { tick: 0 }));
    use bm_trace::TraceEvent as E;
    assert!(service.events().iter().any(|e| matches!(
        e,
        E::ServeCancel {
            deadline: false,
            ..
        }
    )));
    assert_eq!(service.counters().counter("serve_explicit_cancel"), 1);
    service.shutdown();
}

#[test]
fn zero_depth_queue_rejects_with_overloaded() {
    let clock = VirtualClock::new();
    let scfg = ServeConfig {
        workers: 1,
        queue_depth: 0,
        ..ServeConfig::default()
    };
    let service = RunService::start(GpuConfig::small(), scfg, clock);
    match service.submit(RunRequest::new(9, chain_app())) {
        Err(ServeError::Overloaded { reason }) => assert!(reason.contains("queue full")),
        other => panic!("expected Overloaded, got {other:?}"),
    }
    service.shutdown();
}

/// The full breaker arc, closed → open → (shed) → half-open → closed,
/// on one worker so the transition order is exact.
#[test]
fn breaker_opens_sheds_probes_and_recloses() {
    let clock = VirtualClock::new();
    let scfg = ServeConfig {
        workers: 1,
        retry: RetryPolicy {
            max_retries: 0,
            base_backoff: 4,
            max_backoff: 4,
        },
        breaker: BreakerConfig {
            failure_threshold: 2,
            cooldown: 100,
        },
        shed_to_barrier: true,
        ..ServeConfig::default()
    };
    let service = RunService::start(GpuConfig::small(), scfg, Arc::clone(&clock) as _);
    let crash = |id: u64| {
        let mut req = RunRequest::new(id, chain_app());
        req.fault = FaultPlan {
            panic_at_kernel: Some(2),
            ..FaultPlan::default()
        };
        req
    };
    // Two consecutive crashes trip the breaker.
    assert!(matches!(
        submit_and_wait(&service, crash(1)).result,
        Err(ServeError::WorkerCrash { .. })
    ));
    assert!(matches!(
        submit_and_wait(&service, crash(2)).result,
        Err(ServeError::WorkerCrash { .. })
    ));
    // Open: the next request is shed to the barrier fallback, which still
    // returns a *report* (degraded), not an error.
    let shed = submit_and_wait(&service, RunRequest::new(3, chain_app()));
    assert!(shed.shed);
    let report = shed.result.expect("shed run completes");
    assert!(report
        .degradation
        .iter()
        .all(|(_, d)| d.rung >= blockmaestro::DegradationRung::Barrier));
    // Cooldown elapses: the next request probes, succeeds, and recloses.
    clock.advance(200);
    let probe = submit_and_wait(&service, RunRequest::new(4, chain_app()));
    assert!(!probe.shed);
    assert_eq!(probe.result.as_ref().unwrap(), &reference());
    let counters = service.counters();
    assert_eq!(counters.counter("breaker_to_open"), 1);
    assert_eq!(counters.counter("breaker_to_half_open"), 1);
    assert_eq!(counters.counter("breaker_to_closed"), 1);
    assert_eq!(counters.counter("serve_outcome_shed"), 1);
    service.shutdown();
}

#[test]
fn open_breaker_rejects_when_shedding_is_disabled() {
    let clock = VirtualClock::new();
    let scfg = ServeConfig {
        workers: 1,
        retry: RetryPolicy {
            max_retries: 0,
            base_backoff: 1,
            max_backoff: 1,
        },
        breaker: BreakerConfig {
            failure_threshold: 1,
            cooldown: 100,
        },
        shed_to_barrier: false,
        ..ServeConfig::default()
    };
    let service = RunService::start(GpuConfig::small(), scfg, clock);
    let mut req = RunRequest::new(1, chain_app());
    req.fault = FaultPlan {
        panic_at_kernel: Some(2),
        ..FaultPlan::default()
    };
    let _ = submit_and_wait(&service, req);
    let out = submit_and_wait(&service, RunRequest::new(2, chain_app()));
    assert_eq!(
        out.result,
        Err(ServeError::Overloaded {
            reason: "circuit breaker open".into()
        })
    );
    assert_eq!(out.attempts, 0);
    service.shutdown();
}

#[test]
fn shutdown_drains_and_joins() {
    let clock = VirtualClock::new();
    let service = RunService::start(GpuConfig::small(), one_worker(), clock);
    let out = submit_and_wait(&service, RunRequest::new(1, chain_app()));
    assert!(out.result.is_ok());
    service.shutdown(); // must not hang
}
