//! # bm-workloads — the BlockMaestro evaluation suite
//!
//! Regenerated versions of the twelve multi-kernel applications of the
//! paper's Table II (Rodinia, PolyBench, SHOC, and Tango suites), the
//! VectorAdd interconnectivity microbenchmark of Fig. 12, and — via
//! `blockmaestro::compare::taskgraph` — the wavefront suite of Fig. 14.
//!
//! Each application is a genuine multi-kernel mini-PTX program built
//! through the command-queue API: its kernels are parsed, functionally
//! executable, and analyzed by the real launch-time value-range pipeline —
//! nothing about the dependency structure is hand-declared.
//!
//! ```
//! use bm_workloads::{suite, Scale};
//!
//! let apps = suite();
//! assert_eq!(apps.len(), 12);
//! let gaussian = apps.iter().find(|b| b.name == "GAUSSIAN").unwrap();
//! let app = (gaussian.build)(Scale::Full);
//! assert_eq!(app.num_kernels(), 510); // Table II
//! ```

pub mod alexnet;
pub mod bicg;
pub mod common;
pub mod fdtd2d;
pub mod fft;
pub mod gaussian;
pub mod gramschm;
pub mod hotspot;
pub mod lud;
pub mod mvt;
pub mod nw;
pub mod pathfinder;
pub mod threemm;
pub mod vectoradd;

pub use common::Scale;

use bm_cmdq::Application;

/// A Table II benchmark entry.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Application name as it appears in Table II.
    pub name: &'static str,
    /// Short description from Table II.
    pub description: &'static str,
    /// Kernel count at [`Scale::Full`] (the `# Kernels` column).
    pub expected_kernels: usize,
    /// Table I pattern classes the paper lists for this app (`P#` column).
    pub paper_patterns: &'static [u8],
    /// Constructor.
    pub build: fn(Scale) -> Application,
}

/// The full Table II benchmark suite, in the paper's order.
pub fn suite() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "3MM",
            description: "3 Matrix Multiplications",
            expected_kernels: 3,
            paper_patterns: &[2, 7],
            build: threemm::build,
        },
        Benchmark {
            name: "AlexNet",
            description: "AlexNet network",
            expected_kernels: 22,
            paper_patterns: &[1, 3, 4],
            build: alexnet::build,
        },
        Benchmark {
            name: "BICG",
            description: "BiCG Sub Kernel of BiCGStab Linear Solver",
            expected_kernels: 2,
            paper_patterns: &[7],
            build: bicg::build,
        },
        Benchmark {
            name: "FDTD-2D",
            description: "2D Finite Different Time Domain",
            expected_kernels: 24,
            paper_patterns: &[5, 7],
            build: fdtd2d::build,
        },
        Benchmark {
            name: "FFT",
            description: "Fast Fourier Transform",
            expected_kernels: 60,
            paper_patterns: &[3, 5, 7],
            build: fft::build,
        },
        Benchmark {
            name: "GAUSSIAN",
            description: "Gaussian Elimination",
            expected_kernels: 510,
            paper_patterns: &[4, 5],
            build: gaussian::build,
        },
        Benchmark {
            name: "GRAMSCHM",
            description: "Gram-Schmidt Decomposition",
            expected_kernels: 192,
            paper_patterns: &[1, 4, 5],
            build: gramschm::build,
        },
        Benchmark {
            name: "HS",
            description: "Hotspot",
            expected_kernels: 10,
            paper_patterns: &[6],
            build: hotspot::build,
        },
        Benchmark {
            name: "LUD",
            description: "LU Decomposition",
            expected_kernels: 46,
            paper_patterns: &[3, 4, 5],
            build: lud::build,
        },
        Benchmark {
            name: "MVT",
            description: "Matrix Vector Product and Transpose",
            expected_kernels: 2,
            paper_patterns: &[7],
            build: mvt::build,
        },
        Benchmark {
            name: "NW",
            description: "Needleman-Wunsch",
            expected_kernels: 255,
            paper_patterns: &[4, 5],
            build: nw::build,
        },
        Benchmark {
            name: "PATH",
            description: "Path Finder",
            expected_kernels: 5,
            paper_patterns: &[6],
            build: pathfinder::build,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_matches_table2_kernel_counts() {
        for b in suite() {
            let app = (b.build)(Scale::Full);
            assert_eq!(
                app.num_kernels(),
                b.expected_kernels,
                "{} kernel count",
                b.name
            );
            assert_eq!(app.name, b.name);
        }
    }

    #[test]
    fn small_scale_apps_are_well_formed() {
        for b in suite() {
            let app = (b.build)(Scale::Small);
            assert!(app.num_kernels() >= 2, "{}", b.name);
            assert!(!app.space.allocs().is_empty());
        }
    }
}
