//! MVT (PolyBench): matrix–vector product and transposed product,
//! `x1 = A·y1` and `x2 = Aᵀ·y2`. Like BICG, the two kernels are
//! data-independent (Table II pattern 7).

use crate::common::{
    blocks_for, kernel, matvec_col_kernel, matvec_row_kernel, test_data, AppBuilder, Scale,
};
use bm_cmdq::Application;
use bm_ptx::kernel::ArgValue;

/// Builds MVT at the given scale.
pub fn build(scale: Scale) -> Application {
    let n: u32 = match scale {
        Scale::Full => 1024,
        Scale::Small => 32,
    };
    let block = 256u32;
    let elems = (n as u64) * (n as u64);
    let mut b = AppBuilder::new("MVT");
    let a = b.alloc_f32(elems);
    let y1 = b.alloc_f32(n as u64);
    let y2 = b.alloc_f32(n as u64);
    let x1 = b.alloc_f32(n as u64);
    let x2 = b.alloc_f32(n as u64);
    b.h2d(a, test_data(elems, 8));
    b.h2d(y1, test_data(n as u64, 9));
    b.h2d(y2, test_data(n as u64, 10));
    let row = kernel(&matvec_row_kernel("mvt_x1"));
    let col = kernel(&matvec_col_kernel("mvt_x2"));
    let grid = blocks_for(n as u64, block);
    b.launch(
        &row,
        grid,
        block,
        vec![
            ArgValue::Ptr(a.base),
            ArgValue::Ptr(y1.base),
            ArgValue::Ptr(x1.base),
            ArgValue::U32(n),
            ArgValue::U32(n),
        ],
    );
    b.launch(
        &col,
        grid,
        block,
        vec![
            ArgValue::Ptr(a.base),
            ArgValue::Ptr(y2.base),
            ArgValue::Ptr(x2.base),
            ArgValue::U32(n),
            ArgValue::U32(n),
        ],
    );
    b.d2h(x1);
    b.d2h(x2);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transposed_product_is_correct() {
        let app = build(Scale::Small);
        assert_eq!(app.num_kernels(), 2);
        let mem = app.run_serialized().unwrap();
        let n = 32usize;
        let allocs = app.space.allocs();
        let av = mem.copy_to_host_f32(allocs[0].base, n * n);
        let y2v = mem.copy_to_host_f32(allocs[2].base, n);
        let x2v = mem.copy_to_host_f32(allocs[4].base, n);
        for c in [0usize, 16, 31] {
            let want: f32 = (0..n).map(|i| av[i * n + c] * y2v[i]).sum();
            assert!((x2v[c] - want).abs() < 1e-3);
        }
    }
}
