//! Shared helpers for constructing workload applications: an application
//! builder over the command-queue API and common mini-PTX kernel sources.

use bm_cmdq::{ApiCall, Application};
use bm_ptx::kernel::{ArgValue, Dim3, Kernel, Launch};
use bm_ptx::mem::{AddressSpace, AllocInfo};
use bm_ptx::parser::parse_kernel;
use std::collections::HashMap;
use std::sync::Arc;

/// Workload scale: `Full` matches the paper's kernel counts; `Small` keeps
/// the same structure at sizes suitable for functional correctness tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-scale instance.
    Full,
    /// Reduced instance for fast functional testing.
    Small,
}

/// Incremental builder for [`Application`]s.
#[derive(Debug)]
pub struct AppBuilder {
    name: String,
    space: AddressSpace,
    calls: Vec<ApiCall>,
    host_data: HashMap<bm_ptx::mem::AllocId, Vec<f32>>,
}

impl AppBuilder {
    /// Starts a new application.
    pub fn new(name: impl Into<String>) -> Self {
        AppBuilder {
            name: name.into(),
            space: AddressSpace::new(),
            calls: Vec::new(),
            host_data: HashMap::new(),
        }
    }

    /// `cudaMalloc` for `n` f32 elements; records the API call.
    pub fn alloc_f32(&mut self, n: u64) -> AllocInfo {
        let info = self.space.alloc(4 * n.max(1));
        self.calls.push(ApiCall::Malloc { alloc: info.id });
        info
    }

    /// Host-to-device copy of `data` into `alloc`.
    pub fn h2d(&mut self, alloc: AllocInfo, data: Vec<f32>) {
        self.calls.push(ApiCall::MemcpyH2D {
            alloc: alloc.id,
            bytes: 4 * data.len() as u64,
        });
        self.host_data.insert(alloc.id, data);
    }

    /// Device-to-host copy (typically the result readback).
    pub fn d2h(&mut self, alloc: AllocInfo) {
        self.calls.push(ApiCall::MemcpyD2H {
            alloc: alloc.id,
            bytes: alloc.size,
        });
    }

    /// Kernel launch with a 1-D grid.
    pub fn launch(&mut self, kernel: &Arc<Kernel>, grid: u32, block: u32, args: Vec<ArgValue>) {
        self.calls.push(ApiCall::KernelLaunch(Launch::new(
            kernel.clone(),
            Dim3::x(grid.max(1)),
            Dim3::x(block),
            args,
        )));
    }

    /// Finishes the application.
    pub fn build(self) -> Application {
        Application {
            name: self.name,
            space: self.space,
            calls: self.calls,
            host_data: self.host_data,
        }
    }
}

/// Parses a kernel source, panicking with the source on error (workload
/// sources are static and must parse).
pub fn kernel(src: &str) -> Arc<Kernel> {
    match parse_kernel(src) {
        Ok(k) => Arc::new(k),
        Err(e) => panic!("workload kernel failed to parse: {e}\n{src}"),
    }
}

/// Number of thread blocks covering `n` elements with `block` threads.
pub fn blocks_for(n: u64, block: u32) -> u32 {
    (n.div_ceil(block as u64)).max(1) as u32
}

/// The standard global-thread-id prologue: leaves `gid` in `%r4`
/// (clobbers `%r1..%r4`).
pub const GID: &str = "
  mov.u32 %r1, %ctaid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %tid.x;
  mad.lo.u32 %r4, %r1, %r2, %r3;
";

/// Elementwise binary kernel source: `C[gid] = A[gid] <op> B[gid]` with an
/// `n` bound guard. `op` is a float mnemonic body using `%f1`, `%f2` into
/// `%f3`, e.g. `"add.f32 %f3, %f1, %f2;"`.
pub fn elementwise_binop(name: &str, op_line: &str) -> String {
    format!(
        r#".entry {name}(.param .u64 A, .param .u64 B, .param .u64 C, .param .u32 n)
{{
  ld.param.u64 %rd1, [A];
  ld.param.u64 %rd2, [B];
  ld.param.u64 %rd3, [C];
  ld.param.u32 %r9, [n];
{GID}
  setp.ge.u32 %p1, %r4, %r9;
  @%p1 bra $DONE;
  mul.wide.u32 %rd4, %r4, 4;
  add.u64 %rd5, %rd1, %rd4;
  ld.global.f32 %f1, [%rd5];
  add.u64 %rd6, %rd2, %rd4;
  ld.global.f32 %f2, [%rd6];
  {op_line}
  add.u64 %rd7, %rd3, %rd4;
  st.global.f32 [%rd7], %f3;
$DONE:
  ret;
}}"#
    )
}

/// Elementwise unary kernel: `B[gid] = f(A[gid])`, `f` filling `%f2` from
/// `%f1` (e.g. relu: `"max.f32 %f2, %f1, 0f00000000;"`).
pub fn elementwise_map(name: &str, op_line: &str) -> String {
    format!(
        r#".entry {name}(.param .u64 A, .param .u64 B, .param .u32 n)
{{
  ld.param.u64 %rd1, [A];
  ld.param.u64 %rd2, [B];
  ld.param.u32 %r9, [n];
{GID}
  setp.ge.u32 %p1, %r4, %r9;
  @%p1 bra $DONE;
  mul.wide.u32 %rd4, %r4, 4;
  add.u64 %rd5, %rd1, %rd4;
  ld.global.f32 %f1, [%rd5];
  {op_line}
  add.u64 %rd6, %rd2, %rd4;
  st.global.f32 [%rd6], %f2;
$DONE:
  ret;
}}"#
    )
}

/// Dense matrix multiply `C[m×n] = A[m×k] · B[k×n]` (row-major), one
/// thread per output element, k-loop per thread.
pub fn matmul_kernel(name: &str) -> String {
    format!(
        r#".entry {name}(.param .u64 A, .param .u64 B, .param .u64 C,
                         .param .u32 m, .param .u32 n, .param .u32 k)
{{
  ld.param.u64 %rd1, [A];
  ld.param.u64 %rd2, [B];
  ld.param.u64 %rd3, [C];
  ld.param.u32 %r20, [m];
  ld.param.u32 %r21, [n];
  ld.param.u32 %r22, [k];
{GID}
  mul.lo.u32 %r23, %r20, %r21;
  setp.ge.u32 %p1, %r4, %r23;
  @%p1 bra $DONE;
  div.u32 %r5, %r4, %r21;
  rem.u32 %r6, %r4, %r21;
  mul.lo.u32 %r7, %r5, %r22;
  mov.u32 %r8, 0;
  mov.f32 %f3, 0f00000000;
$LOOP:
  setp.ge.u32 %p2, %r8, %r22;
  @%p2 bra $STORE;
  add.u32 %r10, %r7, %r8;
  mul.wide.u32 %rd4, %r10, 4;
  add.u64 %rd5, %rd1, %rd4;
  ld.global.f32 %f1, [%rd5];
  mad.lo.u32 %r11, %r8, %r21, %r6;
  mul.wide.u32 %rd6, %r11, 4;
  add.u64 %rd7, %rd2, %rd6;
  ld.global.f32 %f2, [%rd7];
  fma.rn.f32 %f3, %f1, %f2, %f3;
  add.u32 %r8, %r8, 1;
  bra $LOOP;
$STORE:
  mul.wide.u32 %rd8, %r4, 4;
  add.u64 %rd9, %rd3, %rd8;
  st.global.f32 [%rd9], %f3;
$DONE:
  ret;
}}"#
    )
}

/// Matrix–vector product `y[row] = Σ_j A[row·n + j] · x[j]`, one thread
/// per row, j-loop per thread.
pub fn matvec_row_kernel(name: &str) -> String {
    format!(
        r#".entry {name}(.param .u64 A, .param .u64 X, .param .u64 Y,
                         .param .u32 rows, .param .u32 n)
{{
  ld.param.u64 %rd1, [A];
  ld.param.u64 %rd2, [X];
  ld.param.u64 %rd3, [Y];
  ld.param.u32 %r20, [rows];
  ld.param.u32 %r21, [n];
{GID}
  setp.ge.u32 %p1, %r4, %r20;
  @%p1 bra $DONE;
  mul.lo.u32 %r7, %r4, %r21;
  mov.u32 %r8, 0;
  mov.f32 %f3, 0f00000000;
$LOOP:
  setp.ge.u32 %p2, %r8, %r21;
  @%p2 bra $STORE;
  add.u32 %r10, %r7, %r8;
  mul.wide.u32 %rd4, %r10, 4;
  add.u64 %rd5, %rd1, %rd4;
  ld.global.f32 %f1, [%rd5];
  mul.wide.u32 %rd6, %r8, 4;
  add.u64 %rd7, %rd2, %rd6;
  ld.global.f32 %f2, [%rd7];
  fma.rn.f32 %f3, %f1, %f2, %f3;
  add.u32 %r8, %r8, 1;
  bra $LOOP;
$STORE:
  mul.wide.u32 %rd8, %r4, 4;
  add.u64 %rd9, %rd3, %rd8;
  st.global.f32 [%rd9], %f3;
$DONE:
  ret;
}}"#
    )
}

/// Transposed matrix–vector product `y[col] = Σ_i A[i·n + col] · x[i]`,
/// one thread per column (strided reads).
pub fn matvec_col_kernel(name: &str) -> String {
    format!(
        r#".entry {name}(.param .u64 A, .param .u64 X, .param .u64 Y,
                         .param .u32 rows, .param .u32 n)
{{
  ld.param.u64 %rd1, [A];
  ld.param.u64 %rd2, [X];
  ld.param.u64 %rd3, [Y];
  ld.param.u32 %r20, [rows];
  ld.param.u32 %r21, [n];
{GID}
  setp.ge.u32 %p1, %r4, %r21;
  @%p1 bra $DONE;
  mov.u32 %r8, 0;
  mov.f32 %f3, 0f00000000;
$LOOP:
  setp.ge.u32 %p2, %r8, %r20;
  @%p2 bra $STORE;
  mad.lo.u32 %r10, %r8, %r21, %r4;
  mul.wide.u32 %rd4, %r10, 4;
  add.u64 %rd5, %rd1, %rd4;
  ld.global.f32 %f1, [%rd5];
  mul.wide.u32 %rd6, %r8, 4;
  add.u64 %rd7, %rd2, %rd6;
  ld.global.f32 %f2, [%rd7];
  fma.rn.f32 %f3, %f1, %f2, %f3;
  add.u32 %r8, %r8, 1;
  bra $LOOP;
$STORE:
  mul.wide.u32 %rd8, %r4, 4;
  add.u64 %rd9, %rd3, %rd8;
  st.global.f32 [%rd9], %f3;
$DONE:
  ret;
}}"#
    )
}

/// Deterministic pseudo-random f32 data in `[0, 1)` for host buffers.
pub fn test_data(n: u64, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 40) & 0xFFFF) as f32 / 65536.0
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bm_ptx::interp::execute_launch;
    use bm_ptx::mem::GlobalMem;

    #[test]
    fn matmul_kernel_computes_product() {
        let k = kernel(&matmul_kernel("mm"));
        let mut sp = AddressSpace::new();
        let (m, n, kk) = (4u32, 3u32, 5u32);
        let a = sp.alloc(4 * (m * kk) as u64);
        let b = sp.alloc(4 * (kk * n) as u64);
        let c = sp.alloc(4 * (m * n) as u64);
        let mut mem = GlobalMem::for_space(&sp);
        let av: Vec<f32> = (0..m * kk).map(|i| (i % 7) as f32).collect();
        let bv: Vec<f32> = (0..kk * n).map(|i| (i % 5) as f32).collect();
        mem.copy_from_host_f32(a.base, &av);
        mem.copy_from_host_f32(b.base, &bv);
        let launch = Launch::new(
            k,
            Dim3::x(1),
            Dim3::x(32),
            vec![
                ArgValue::Ptr(a.base),
                ArgValue::Ptr(b.base),
                ArgValue::Ptr(c.base),
                ArgValue::U32(m),
                ArgValue::U32(n),
                ArgValue::U32(kk),
            ],
        );
        execute_launch(&launch, &mut mem).unwrap();
        let cv = mem.copy_to_host_f32(c.base, (m * n) as usize);
        for row in 0..m {
            for col in 0..n {
                let mut acc = 0.0f32;
                for x in 0..kk {
                    acc += av[(row * kk + x) as usize] * bv[(x * n + col) as usize];
                }
                assert_eq!(cv[(row * n + col) as usize], acc, "({row},{col})");
            }
        }
    }

    #[test]
    fn matvec_row_and_col_agree_with_reference() {
        let kr = kernel(&matvec_row_kernel("mvr"));
        let kc = kernel(&matvec_col_kernel("mvc"));
        let (rows, n) = (6u32, 4u32);
        let mut sp = AddressSpace::new();
        let a = sp.alloc(4 * (rows * n) as u64);
        let x = sp.alloc(4 * n.max(rows) as u64);
        let y1 = sp.alloc(4 * rows as u64);
        let y2 = sp.alloc(4 * n as u64);
        let mut mem = GlobalMem::for_space(&sp);
        let av = test_data((rows * n) as u64, 1);
        let xv = test_data(n.max(rows) as u64, 2);
        mem.copy_from_host_f32(a.base, &av);
        mem.copy_from_host_f32(x.base, &xv);
        let l1 = Launch::new(
            kr,
            Dim3::x(1),
            Dim3::x(32),
            vec![
                ArgValue::Ptr(a.base),
                ArgValue::Ptr(x.base),
                ArgValue::Ptr(y1.base),
                ArgValue::U32(rows),
                ArgValue::U32(n),
            ],
        );
        let l2 = Launch::new(
            kc,
            Dim3::x(1),
            Dim3::x(32),
            vec![
                ArgValue::Ptr(a.base),
                ArgValue::Ptr(x.base),
                ArgValue::Ptr(y2.base),
                ArgValue::U32(rows),
                ArgValue::U32(n),
            ],
        );
        execute_launch(&l1, &mut mem).unwrap();
        execute_launch(&l2, &mut mem).unwrap();
        let y1v = mem.copy_to_host_f32(y1.base, rows as usize);
        let y2v = mem.copy_to_host_f32(y2.base, n as usize);
        for r in 0..rows as usize {
            let want: f32 = (0..n as usize)
                .map(|j| av[r * n as usize + j] * xv[j])
                .sum();
            assert!((y1v[r] - want).abs() < 1e-4);
        }
        for c in 0..n as usize {
            let want: f32 = (0..rows as usize)
                .map(|i| av[i * n as usize + c] * xv[i])
                .sum();
            assert!((y2v[c] - want).abs() < 1e-4);
        }
    }

    #[test]
    fn builder_assembles_calls_in_order() {
        let mut b = AppBuilder::new("t");
        let a = b.alloc_f32(16);
        b.h2d(a, vec![1.0; 16]);
        let k = kernel(&elementwise_map("relu", "max.f32 %f2, %f1, 0f00000000;"));
        let out = b.alloc_f32(16);
        b.launch(
            &k,
            1,
            32,
            vec![
                ArgValue::Ptr(a.base),
                ArgValue::Ptr(out.base),
                ArgValue::U32(16),
            ],
        );
        b.d2h(out);
        let app = b.build();
        assert_eq!(app.calls.len(), 5);
        assert_eq!(app.num_kernels(), 1);
        let mem = app.run_serialized().unwrap();
        assert_eq!(mem.read_f32(out.base), 1.0);
    }

    #[test]
    fn test_data_is_deterministic_and_bounded() {
        let a = test_data(100, 7);
        let b = test_data(100, 7);
        assert_eq!(a, b);
        assert!(a.iter().all(|v| (0.0..1.0).contains(v)));
        assert_ne!(test_data(100, 8), a);
    }
}
