//! AlexNet (Tango): a 22-kernel CNN inference pipeline — five convolution
//! stages with ReLU/pool/normalization layers followed by three
//! fully-connected layers and a softmax. Convolutions and FC layers read
//! entire input activations (fully-connected dependency, Table II pattern
//! 1); ReLU/norm are 1-to-1 (pattern 3); pooling contracts 2-to-1
//! (pattern 4/5 family).

use crate::common::{blocks_for, elementwise_map, kernel, test_data, AppBuilder, Scale};
use bm_cmdq::Application;
use bm_ptx::kernel::{ArgValue, Kernel};
use bm_ptx::mem::AllocInfo;
use std::sync::Arc;

/// 1-D multi-channel convolution: `out[co][p] = Σ_{ci,k} in[ci][clamp(p+k-f/2)] · w[co][ci][k]`.
fn conv_kernel() -> Arc<Kernel> {
    kernel(
        r#".entry conv(.param .u64 IN, .param .u64 W, .param .u64 OUT,
                       .param .u32 hw, .param .u32 cin, .param .u32 cout, .param .u32 f)
{
  ld.param.u64 %rd1, [IN];
  ld.param.u64 %rd2, [W];
  ld.param.u64 %rd3, [OUT];
  ld.param.u32 %r20, [hw];
  ld.param.u32 %r21, [cin];
  ld.param.u32 %r22, [cout];
  ld.param.u32 %r23, [f];
  mov.u32 %r1, %ctaid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %tid.x;
  mad.lo.u32 %r4, %r1, %r2, %r3;
  mul.lo.u32 %r5, %r22, %r20;
  setp.ge.u32 %p1, %r4, %r5;
  @%p1 bra $DONE;
  div.u32 %r6, %r4, %r20;
  rem.u32 %r7, %r4, %r20;
  mul.lo.u32 %r8, %r21, %r23;
  mul.lo.u32 %r9, %r6, %r8;
  shr.u32 %r10, %r23, 1;
  sub.u32 %r11, %r20, 1;
  mov.u32 %r12, 0;
  mov.f32 %f1, 0f00000000;
$LOOP:
  setp.ge.u32 %p2, %r12, %r8;
  @%p2 bra $STORE;
  div.u32 %r13, %r12, %r23;
  rem.u32 %r14, %r12, %r23;
  add.u32 %r15, %r7, %r14;
  max.u32 %r15, %r15, %r10;
  sub.u32 %r15, %r15, %r10;
  min.u32 %r15, %r15, %r11;
  mad.lo.u32 %r16, %r13, %r20, %r15;
  mul.wide.u32 %rd4, %r16, 4;
  add.u64 %rd5, %rd1, %rd4;
  ld.global.f32 %f2, [%rd5];
  add.u32 %r17, %r9, %r12;
  mul.wide.u32 %rd6, %r17, 4;
  add.u64 %rd7, %rd2, %rd6;
  ld.global.f32 %f3, [%rd7];
  fma.rn.f32 %f1, %f2, %f3, %f1;
  add.u32 %r12, %r12, 1;
  bra $LOOP;
$STORE:
  mul.wide.u32 %rd8, %r4, 4;
  add.u64 %rd9, %rd3, %rd8;
  st.global.f32 [%rd9], %f1;
$DONE:
  ret;
}"#,
    )
}

/// 2:1 max pooling per channel: `out[c][q] = max(in[c][2q], in[c][2q+1])`.
fn pool_kernel() -> Arc<Kernel> {
    kernel(
        r#".entry pool(.param .u64 IN, .param .u64 OUT, .param .u32 hwo, .param .u32 c)
{
  ld.param.u64 %rd1, [IN];
  ld.param.u64 %rd2, [OUT];
  ld.param.u32 %r20, [hwo];
  ld.param.u32 %r21, [c];
  mov.u32 %r1, %ctaid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %tid.x;
  mad.lo.u32 %r4, %r1, %r2, %r3;
  mul.lo.u32 %r5, %r21, %r20;
  setp.ge.u32 %p1, %r4, %r5;
  @%p1 bra $DONE;
  div.u32 %r6, %r4, %r20;
  rem.u32 %r7, %r4, %r20;
  shl.b32 %r8, %r20, 1;
  mul.lo.u32 %r9, %r6, %r8;
  shl.b32 %r10, %r7, 1;
  add.u32 %r11, %r9, %r10;
  mul.wide.u32 %rd3, %r11, 4;
  add.u64 %rd4, %rd1, %rd3;
  ld.global.f32 %f1, [%rd4];
  ld.global.f32 %f2, [%rd4+4];
  max.f32 %f3, %f1, %f2;
  mul.wide.u32 %rd5, %r4, 4;
  add.u64 %rd6, %rd2, %rd5;
  st.global.f32 [%rd6], %f3;
$DONE:
  ret;
}"#,
    )
}

/// Pseudo-softmax over a small vector: thread 0 normalizes squared
/// activations by their sum.
fn softmax_kernel() -> Arc<Kernel> {
    kernel(
        r#".entry softmax(.param .u64 IN, .param .u64 OUT, .param .u32 n)
{
  ld.param.u64 %rd1, [IN];
  ld.param.u64 %rd2, [OUT];
  ld.param.u32 %r20, [n];
  mov.u32 %r3, %tid.x;
  setp.ne.u32 %p1, %r3, 0;
  @%p1 bra $DONE;
  mov.u32 %r5, 0;
  mov.f32 %f1, 0f33D6BF95;
$SUM:
  setp.ge.u32 %p2, %r5, %r20;
  @%p2 bra $WRITE;
  mul.wide.u32 %rd3, %r5, 4;
  add.u64 %rd4, %rd1, %rd3;
  ld.global.f32 %f2, [%rd4];
  fma.rn.f32 %f1, %f2, %f2, %f1;
  add.u32 %r5, %r5, 1;
  bra $SUM;
$WRITE:
  mov.u32 %r5, 0;
$WLOOP:
  setp.ge.u32 %p3, %r5, %r20;
  @%p3 bra $DONE;
  mul.wide.u32 %rd5, %r5, 4;
  add.u64 %rd6, %rd1, %rd5;
  ld.global.f32 %f3, [%rd6];
  mul.f32 %f4, %f3, %f3;
  div.rn.f32 %f5, %f4, %f1;
  add.u64 %rd7, %rd2, %rd5;
  st.global.f32 [%rd7], %f5;
  add.u32 %r5, %r5, 1;
  bra $WLOOP;
$DONE:
  ret;
}"#,
    )
}

/// Layer dimensions, scaled for `Full`/`Small`.
struct Dims {
    hw0: u32,
}

/// Builds the 22-kernel AlexNet pipeline.
pub fn build(scale: Scale) -> Application {
    let dims = match scale {
        Scale::Full => Dims { hw0: 512 },
        Scale::Small => Dims { hw0: 64 },
    };
    let hw0 = dims.hw0;
    let block = 256u32;
    let mut b = AppBuilder::new("AlexNet");
    let conv = conv_kernel();
    let pool = pool_kernel();
    let soft = softmax_kernel();
    let relu = kernel(&elementwise_map("relu", "max.f32 %f2, %f1, 0f00000000;"));
    let norm = kernel(&elementwise_map(
        "lrn",
        "fma.rn.f32 %f3, %f1, %f1, 0f3F800000;\n  div.rn.f32 %f2, %f1, %f3;",
    ));
    let input = b.alloc_f32(3 * hw0 as u64);
    b.h2d(input, test_data(3 * hw0 as u64, 101));
    let weight_seed = std::cell::Cell::new(200u64);
    let w = |b: &mut AppBuilder, n: u64| -> AllocInfo {
        weight_seed.set(weight_seed.get() + 1);
        let a = b.alloc_f32(n);
        b.h2d(a, test_data(n, weight_seed.get()));
        a
    };
    // Helper closures for each layer kind; each returns its output buffer.
    let launch_conv = |b: &mut AppBuilder, inp: AllocInfo, hw: u32, cin: u32, cout: u32, f: u32| {
        let wts = w(b, cout as u64 * cin as u64 * f as u64);
        let out = b.alloc_f32(cout as u64 * hw as u64);
        b.launch(
            &conv,
            blocks_for(cout as u64 * hw as u64, block),
            block,
            vec![
                ArgValue::Ptr(inp.base),
                ArgValue::Ptr(wts.base),
                ArgValue::Ptr(out.base),
                ArgValue::U32(hw),
                ArgValue::U32(cin),
                ArgValue::U32(cout),
                ArgValue::U32(f),
            ],
        );
        out
    };
    let launch_relu = |b: &mut AppBuilder, k: &Arc<Kernel>, inp: AllocInfo, n: u64| {
        let out = b.alloc_f32(n);
        b.launch(
            k,
            blocks_for(n, block),
            block,
            vec![
                ArgValue::Ptr(inp.base),
                ArgValue::Ptr(out.base),
                ArgValue::U32(n as u32),
            ],
        );
        out
    };
    let launch_pool = |b: &mut AppBuilder, k: &Arc<Kernel>, inp: AllocInfo, hwo: u32, c: u32| {
        let out = b.alloc_f32(c as u64 * hwo as u64);
        b.launch(
            k,
            blocks_for(c as u64 * hwo as u64, block),
            block,
            vec![
                ArgValue::Ptr(inp.base),
                ArgValue::Ptr(out.base),
                ArgValue::U32(hwo),
                ArgValue::U32(c),
            ],
        );
        out
    };
    // FC layers use the transposed layout (weights stored `[I × O]`) so a
    // warp's lanes read consecutive weights — the coalesced formulation
    // every GEMV library uses.
    let fc_kernel = kernel(&crate::common::matvec_col_kernel("fc"));
    let launch_fc = |b: &mut AppBuilder, inp: AllocInfo, i: u32, o: u32| {
        let wts = w(b, o as u64 * i as u64);
        let out = b.alloc_f32(o as u64);
        b.launch(
            &fc_kernel,
            blocks_for(o as u64, block),
            block,
            vec![
                ArgValue::Ptr(wts.base),
                ArgValue::Ptr(inp.base),
                ArgValue::Ptr(out.base),
                ArgValue::U32(i),
                ArgValue::U32(o),
            ],
        );
        out
    };
    // conv1 -> relu -> pool -> norm
    let c1 = launch_conv(&mut b, input, hw0, 3, 16, 5);
    let r1 = launch_relu(&mut b, &relu, c1, 16 * hw0 as u64);
    let p1 = launch_pool(&mut b, &pool, r1, hw0 / 2, 16);
    let n1 = launch_relu(&mut b, &norm, p1, 16 * (hw0 / 2) as u64);
    // conv2 -> relu -> pool -> norm
    let c2 = launch_conv(&mut b, n1, hw0 / 2, 16, 32, 5);
    let r2 = launch_relu(&mut b, &relu, c2, 32 * (hw0 / 2) as u64);
    let p2 = launch_pool(&mut b, &pool, r2, hw0 / 4, 32);
    let n2 = launch_relu(&mut b, &norm, p2, 32 * (hw0 / 4) as u64);
    // conv3..conv5 with relus
    let c3 = launch_conv(&mut b, n2, hw0 / 4, 32, 32, 3);
    let r3 = launch_relu(&mut b, &relu, c3, 32 * (hw0 / 4) as u64);
    let c4 = launch_conv(&mut b, r3, hw0 / 4, 32, 32, 3);
    let r4 = launch_relu(&mut b, &relu, c4, 32 * (hw0 / 4) as u64);
    let c5 = launch_conv(&mut b, r4, hw0 / 4, 32, 16, 3);
    let r5 = launch_relu(&mut b, &relu, c5, 16 * (hw0 / 4) as u64);
    let p5 = launch_pool(&mut b, &pool, r5, hw0 / 8, 16);
    // fc6..fc8 with relus, then softmax
    let flat = 16 * (hw0 / 8);
    let f6 = launch_fc(&mut b, p5, flat, 512.min(flat));
    let r6 = launch_relu(&mut b, &relu, f6, 512.min(flat) as u64);
    let f7 = launch_fc(&mut b, r6, 512.min(flat), 128);
    let r7 = launch_relu(&mut b, &relu, f7, 128);
    let f8 = launch_fc(&mut b, r7, 128, 10);
    let r8 = launch_relu(&mut b, &relu, f8, 10);
    let out = b.alloc_f32(10);
    b.launch(
        &soft,
        1,
        32,
        vec![
            ArgValue::Ptr(r8.base),
            ArgValue::Ptr(out.base),
            ArgValue::U32(10),
        ],
    );
    b.d2h(out);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_count_matches_table2() {
        assert_eq!(build(Scale::Full).num_kernels(), 22);
        assert_eq!(build(Scale::Small).num_kernels(), 22);
    }

    #[test]
    fn pipeline_produces_a_distribution() {
        let app = build(Scale::Small);
        let mem = app.run_serialized().unwrap();
        let out = app.space.allocs().last().copied().unwrap();
        let v = mem.copy_to_host_f32(out.base, 10);
        assert!(v.iter().all(|x| x.is_finite() && *x >= 0.0));
        let sum: f32 = v.iter().sum();
        assert!((sum - 1.0).abs() < 1e-3, "pseudo-softmax sums to {sum}");
    }
}
