//! FFT (SHOC): batched transform built from Stockham-style butterfly
//! stages, one kernel per stage, ping-ponging between two buffers. Within
//! a batch, stage `s+1` reads what stage `s` wrote (group patterns 3/5);
//! the first stage of each batch is independent of the previous batch's
//! last stage (pattern 7) because batches use disjoint signal slices.
//!
//! The butterfly uses the Haar pair `(a+b, a-b)` — the same data movement
//! as a radix-2 FFT stage without complex twiddles, which is what the
//! dependency analysis and timing care about.

use crate::common::{blocks_for, kernel, test_data, AppBuilder, Scale};
use bm_cmdq::Application;
use bm_ptx::kernel::{ArgValue, Kernel};
use std::sync::Arc;

/// One Stockham butterfly stage over `n` elements: thread `t` (of `n/2`)
/// reads `in[2t]`, `in[2t+1]` and writes `out[t]`, `out[t + n/2]`.
fn stage_kernel() -> Arc<Kernel> {
    kernel(
        r#".entry fft_stage(.param .u64 IN, .param .u64 OUT, .param .u32 half)
{
  ld.param.u64 %rd1, [IN];
  ld.param.u64 %rd2, [OUT];
  ld.param.u32 %r20, [half];
  mov.u32 %r1, %ctaid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %tid.x;
  mad.lo.u32 %r4, %r1, %r2, %r3;
  setp.ge.u32 %p1, %r4, %r20;
  @%p1 bra $DONE;
  shl.b32 %r5, %r4, 1;
  mul.wide.u32 %rd3, %r5, 4;
  add.u64 %rd4, %rd1, %rd3;
  ld.global.f32 %f1, [%rd4];
  ld.global.f32 %f2, [%rd4+4];
  add.f32 %f3, %f1, %f2;
  sub.f32 %f4, %f1, %f2;
  mul.wide.u32 %rd5, %r4, 4;
  add.u64 %rd6, %rd2, %rd5;
  st.global.f32 [%rd6], %f3;
  add.u32 %r6, %r4, %r20;
  mul.wide.u32 %rd7, %r6, 4;
  add.u64 %rd8, %rd2, %rd7;
  st.global.f32 [%rd8], %f4;
$DONE:
  ret;
}"#,
    )
}

/// Builds the FFT workload: `batches` independent transforms of `n`
/// points, `log2(n)` stage kernels each.
pub fn build(scale: Scale) -> Application {
    let (n, batches) = match scale {
        Scale::Full => (4_096u64, 5usize), // 5 x 12 stages = 60 kernels
        Scale::Small => (256, 2),          // 2 x 8 = 16 kernels
    };
    let stages = n.trailing_zeros() as usize;
    let block = 256u32;
    let mut b = AppBuilder::new("FFT");
    let x = b.alloc_f32(n * batches as u64);
    let y = b.alloc_f32(n * batches as u64);
    b.h2d(x, test_data(n * batches as u64, 61));
    let k = stage_kernel();
    for batch in 0..batches {
        let off = 4 * n * batch as u64;
        let mut bufs = [x.base + off, y.base + off];
        for _ in 0..stages {
            b.launch(
                &k,
                blocks_for(n / 2, block),
                block,
                vec![
                    ArgValue::Ptr(bufs[0]),
                    ArgValue::Ptr(bufs[1]),
                    ArgValue::U32((n / 2) as u32),
                ],
            );
            bufs.swap(0, 1);
        }
    }
    let result = if stages.is_multiple_of(2) { x } else { y };
    b.d2h(result);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_count_matches_table2() {
        assert_eq!(build(Scale::Full).num_kernels(), 60);
    }

    #[test]
    fn haar_cascade_matches_host_reference() {
        let app = build(Scale::Small);
        let mem = app.run_serialized().unwrap();
        let n = 256usize;
        let input = test_data((n * 2) as u64, 61);
        // Host model of one batch.
        let host_stage = |x: &[f32]| -> Vec<f32> {
            let h = x.len() / 2;
            let mut out = vec![0.0f32; x.len()];
            for t in 0..h {
                out[t] = x[2 * t] + x[2 * t + 1];
                out[t + h] = x[2 * t] - x[2 * t + 1];
            }
            out
        };
        let mut cur = input[..n].to_vec();
        for _ in 0..8 {
            cur = host_stage(&cur);
        }
        let result_alloc = app.space.allocs()[0]; // 8 stages: ends in x
        let got = mem.copy_to_host_f32(result_alloc.base, n);
        for i in [0usize, 1, 100, n - 1] {
            assert!(
                (got[i] - cur[i]).abs() < 1e-2,
                "i={i}: {} vs {}",
                got[i],
                cur[i]
            );
        }
    }

    #[test]
    fn batches_are_independent() {
        use bm_depgraph::{build_graph, HazardMode};
        use bm_ptx::absint::analyze_launch;
        let app = build(Scale::Small);
        let l = app.launches();
        // Last stage of batch 0 (index 7) vs first of batch 1 (index 8).
        let a = analyze_launch(l[7]);
        let b2 = analyze_launch(l[8]);
        let g = build_graph(&a, &b2, HazardMode::Raw);
        assert!(g.is_independent());
        // Consecutive stages inside a batch do depend.
        let c = analyze_launch(l[1]);
        let g2 = build_graph(&a, &c, HazardMode::Raw);
        let _ = g2; // stages 7->1 unrelated order; check 0->1 instead
        let s0 = analyze_launch(l[0]);
        let s1 = analyze_launch(l[1]);
        let g3 = build_graph(&s0, &s1, HazardMode::Raw);
        assert!(!g3.is_independent());
    }
}
