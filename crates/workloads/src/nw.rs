//! NW — Needleman-Wunsch (Rodinia): global sequence alignment by dynamic
//! programming over a `(n+1) × (n+1)` score matrix, processed in `B × B`
//! tiles along anti-diagonals. One kernel per tile diagonal: `T` kernels
//! sweeping down-right and `T-1` back up — `2T - 1` kernels (255 for
//! `T = 128`). Neighbouring diagonals exchange tile edges, producing
//! 1-to-n / n-to-1 patterns (Table II: 4, 5).

use crate::common::{kernel, test_data, AppBuilder, Scale};
use bm_cmdq::Application;
use bm_ptx::kernel::{ArgValue, Kernel};
use std::sync::Arc;

/// Tile kernel: block `b` processes tile `(rb + b, cb - b)`; threads
/// `(ti, tj)` sweep the tile's internal anti-diagonals with barriers,
/// computing `max(diag + ref, up - P, left - P)`.
fn nw_kernel() -> Arc<Kernel> {
    kernel(
        r#".entry nw(.param .u64 ITEMS, .param .u64 REF, .param .u32 cols,
                     .param .u32 bs, .param .u32 rb, .param .u32 cb)
{
  ld.param.u64 %rd1, [ITEMS];
  ld.param.u64 %rd2, [REF];
  ld.param.u32 %r20, [cols];
  ld.param.u32 %r21, [bs];
  ld.param.u32 %r22, [rb];
  ld.param.u32 %r23, [cb];
  mov.u32 %r1, %ctaid.x;
  mov.u32 %r3, %tid.x;
  div.u32 %r5, %r3, %r21;
  rem.u32 %r6, %r3, %r21;
  add.u32 %r7, %r22, %r1;
  sub.u32 %r8, %r23, %r1;
  // Global cell (gi, gj) = (r*B + 1 + ti, c*B + 1 + tj).
  mul.lo.u32 %r9, %r7, %r21;
  add.u32 %r9, %r9, 1;
  add.u32 %r9, %r9, %r5;
  mul.lo.u32 %r10, %r8, %r21;
  add.u32 %r10, %r10, 1;
  add.u32 %r10, %r10, %r6;
  mad.lo.u32 %r11, %r9, %r20, %r10;
  mul.wide.u32 %rd3, %r11, 4;
  add.u64 %rd4, %rd1, %rd3;
  add.u64 %rd5, %rd2, %rd3;
  // Neighbour addresses: up = idx - cols, left = idx - 1, diag = up - 1.
  sub.u32 %r12, %r11, %r20;
  mul.wide.u32 %rd6, %r12, 4;
  add.u64 %rd7, %rd1, %rd6;
  // Wavefront steps s = 0 .. 2B-2; thread acts when ti + tj == s.
  add.u32 %r13, %r5, %r6;
  shl.b32 %r14, %r21, 1;
  sub.u32 %r14, %r14, 1;
  mov.u32 %r15, 0;
$STEP:
  setp.ge.u32 %p1, %r15, %r14;
  @%p1 bra $END;
  bar.sync 0;
  setp.ne.u32 %p2, %r13, %r15;
  @%p2 bra $NEXT;
  ld.global.f32 %f1, [%rd7-4];
  ld.global.f32 %f2, [%rd5];
  add.f32 %f3, %f1, %f2;
  ld.global.f32 %f4, [%rd7];
  sub.f32 %f5, %f4, 0f3F800000;
  ld.global.f32 %f6, [%rd4-4];
  sub.f32 %f7, %f6, 0f3F800000;
  max.f32 %f8, %f3, %f5;
  max.f32 %f9, %f8, %f7;
  st.global.f32 [%rd4], %f9;
$NEXT:
  add.u32 %r15, %r15, 1;
  bra $STEP;
$END:
  ret;
}"#,
    )
}

/// Builds NW over a `T·B × T·B` cell grid: `2T - 1` kernels.
pub fn build(scale: Scale) -> Application {
    let (bs, t_blocks): (u32, u32) = match scale {
        Scale::Full => (16, 128), // 255 kernels, 2048x2048 cells
        Scale::Small => (8, 8),   // 15 kernels, 64x64 cells
    };
    let n = bs * t_blocks;
    let cols = n + 1;
    let elems = (cols as u64) * (cols as u64);
    let mut b = AppBuilder::new("NW");
    let items = b.alloc_f32(elems);
    let reference = b.alloc_f32(elems);
    // Initial scores: first row/column hold gap penalties, interior zero.
    let mut init = vec![0.0f32; elems as usize];
    for i in 0..cols as usize {
        init[i] = -(i as f32);
        init[i * cols as usize] = -(i as f32);
    }
    b.h2d(items, init);
    b.h2d(reference, test_data(elems, 111));
    let k = nw_kernel();
    let threads = bs * bs;
    let args = |rb: u32, cb: u32| {
        vec![
            ArgValue::Ptr(items.base),
            ArgValue::Ptr(reference.base),
            ArgValue::U32(cols),
            ArgValue::U32(bs),
            ArgValue::U32(rb),
            ArgValue::U32(cb),
        ]
    };
    // Forward sweep: diagonals with d = 1..T tiles.
    for d in 1..=t_blocks {
        b.launch(&k, d, threads, args(0, d - 1));
    }
    // Backward sweep: diagonals shrinking from T-1 down to 1 tiles.
    for d in (1..t_blocks).rev() {
        b.launch(&k, d, threads, args(t_blocks - d, t_blocks - 1));
    }
    b.d2h(items);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_count_matches_table2() {
        assert_eq!(build(Scale::Full).num_kernels(), 255);
    }

    #[test]
    fn dp_matches_host_reference() {
        let app = build(Scale::Small);
        let mem = app.run_serialized().unwrap();
        let cols = 65usize;
        let reference = test_data((cols * cols) as u64, 111);
        let mut score = vec![0.0f32; cols * cols];
        for i in 0..cols {
            score[i] = -(i as f32);
            score[i * cols] = -(i as f32);
        }
        for i in 1..cols {
            for j in 1..cols {
                let d = score[(i - 1) * cols + j - 1] + reference[i * cols + j];
                let u = score[(i - 1) * cols + j] - 1.0;
                let l = score[i * cols + j - 1] - 1.0;
                score[i * cols + j] = d.max(u).max(l);
            }
        }
        let got = mem.copy_to_host_f32(app.space.allocs()[0].base, cols * cols);
        for probe in [cols + 1, 10 * cols + 7, 40 * cols + 60, 64 * cols + 64] {
            assert!(
                (got[probe] - score[probe]).abs() < 1e-3,
                "cell {probe}: {} vs {}",
                got[probe],
                score[probe]
            );
        }
    }
}
