//! GRAMSCHM (PolyBench): classical Gram–Schmidt QR decomposition of an
//! `N × M` column-major matrix. Every column k launches three kernels:
//! norm (reduction over column k), normalize (scales column k of Q), and
//! update (orthogonalizes the trailing columns) — 3M kernels total, with
//! fully-connected, 1-to-n, and n-to-1 patterns (Table II: 1, 4, 5).

use crate::common::{blocks_for, kernel, test_data, AppBuilder, Scale};
use bm_cmdq::Application;
use bm_ptx::kernel::{ArgValue, Kernel};
use std::sync::Arc;

/// Norm of column k: one block; every thread reduces a strided slice of
/// the column into shared memory, thread 0 finishes the reduction and
/// stores `r[k] = sqrt(Σ A[k·N + i]²)`.
fn norm_kernel() -> Arc<Kernel> {
    kernel(
        r#".entry gs_norm(.param .u64 A, .param .u64 R, .param .u32 n, .param .u32 k)
{
  .shared 512;
  ld.param.u64 %rd1, [A];
  ld.param.u64 %rd2, [R];
  ld.param.u32 %r20, [n];
  ld.param.u32 %r21, [k];
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %tid.x;
  mul.lo.u32 %r5, %r21, %r20;
  mov.u32 %r6, %r3;
  mov.f32 %f1, 0f00000000;
$LOOP:
  setp.ge.u32 %p2, %r6, %r20;
  @%p2 bra $RED;
  add.u32 %r7, %r5, %r6;
  mul.wide.u32 %rd3, %r7, 4;
  add.u64 %rd4, %rd1, %rd3;
  ld.global.f32 %f2, [%rd4];
  fma.rn.f32 %f1, %f2, %f2, %f1;
  add.u32 %r6, %r6, %r2;
  bra $LOOP;
$RED:
  shl.b32 %r8, %r3, 2;
  st.shared.f32 [%r8], %f1;
  bar.sync 0;
  setp.ne.u32 %p1, %r3, 0;
  @%p1 bra $DONE;
  mov.u32 %r9, 0;
  mov.f32 %f3, 0f00000000;
$SUM:
  setp.ge.u32 %p3, %r9, %r2;
  @%p3 bra $OUT;
  shl.b32 %r10, %r9, 2;
  ld.shared.f32 %f4, [%r10];
  add.f32 %f3, %f3, %f4;
  add.u32 %r9, %r9, 1;
  bra $SUM;
$OUT:
  sqrt.rn.f32 %f5, %f3;
  mul.wide.u32 %rd5, %r21, 4;
  add.u64 %rd6, %rd2, %rd5;
  st.global.f32 [%rd6], %f5;
$DONE:
  ret;
}"#,
    )
}

/// Normalize: `Q[k·N + i] = A[k·N + i] / r[k]`, one thread per row.
fn normalize_kernel() -> Arc<Kernel> {
    kernel(
        r#".entry gs_normalize(.param .u64 A, .param .u64 R, .param .u64 Q,
                               .param .u32 n, .param .u32 k)
{
  ld.param.u64 %rd1, [A];
  ld.param.u64 %rd2, [R];
  ld.param.u64 %rd3, [Q];
  ld.param.u32 %r20, [n];
  ld.param.u32 %r21, [k];
  mov.u32 %r1, %ctaid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %tid.x;
  mad.lo.u32 %r4, %r1, %r2, %r3;
  setp.ge.u32 %p1, %r4, %r20;
  @%p1 bra $DONE;
  mad.lo.u32 %r5, %r21, %r20, %r4;
  mul.wide.u32 %rd4, %r5, 4;
  add.u64 %rd5, %rd1, %rd4;
  ld.global.f32 %f1, [%rd5];
  mul.wide.u32 %rd6, %r21, 4;
  add.u64 %rd7, %rd2, %rd6;
  ld.global.f32 %f2, [%rd7];
  div.rn.f32 %f3, %f1, %f2;
  add.u64 %rd8, %rd3, %rd4;
  st.global.f32 [%rd8], %f3;
$DONE:
  ret;
}"#,
    )
}

/// Update: one *block* per trailing column `j in k+1..m`. Phase 1 reduces
/// `r = Q[:,k]·A[:,j]` across the block via shared memory; phase 2 applies
/// `A[:,j] -= r · Q[:,k]` with all threads striding the column.
fn update_kernel() -> Arc<Kernel> {
    kernel(
        r#".entry gs_update(.param .u64 A, .param .u64 Q, .param .u64 RO,
                            .param .u32 n, .param .u32 m, .param .u32 k)
{
  .shared 512;
  ld.param.u64 %rd1, [A];
  ld.param.u64 %rd2, [Q];
  ld.param.u64 %rd3, [RO];
  ld.param.u32 %r20, [n];
  ld.param.u32 %r21, [m];
  ld.param.u32 %r22, [k];
  mov.u32 %r1, %ctaid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %tid.x;
  add.u32 %r5, %r22, 1;
  add.u32 %r5, %r5, %r1;
  setp.ge.u32 %p1, %r5, %r21;
  @%p1 bra $DONE;
  mul.lo.u32 %r6, %r22, %r20;
  mul.lo.u32 %r7, %r5, %r20;
  mov.u32 %r8, %r3;
  mov.f32 %f1, 0f00000000;
$DOT:
  setp.ge.u32 %p2, %r8, %r20;
  @%p2 bra $RED;
  add.u32 %r9, %r6, %r8;
  mul.wide.u32 %rd4, %r9, 4;
  add.u64 %rd5, %rd2, %rd4;
  ld.global.f32 %f2, [%rd5];
  add.u32 %r10, %r7, %r8;
  mul.wide.u32 %rd6, %r10, 4;
  add.u64 %rd7, %rd1, %rd6;
  ld.global.f32 %f3, [%rd7];
  fma.rn.f32 %f1, %f2, %f3, %f1;
  add.u32 %r8, %r8, %r2;
  bra $DOT;
$RED:
  shl.b32 %r11, %r3, 2;
  st.shared.f32 [%r11], %f1;
  bar.sync 0;
  setp.ne.u32 %p3, %r3, 0;
  @%p3 bra $WAIT;
  mov.u32 %r12, 0;
  mov.f32 %f4, 0f00000000;
$SUM:
  setp.ge.u32 %p4, %r12, %r2;
  @%p4 bra $SDONE;
  shl.b32 %r13, %r12, 2;
  ld.shared.f32 %f5, [%r13];
  add.f32 %f4, %f4, %f5;
  add.u32 %r12, %r12, 1;
  bra $SUM;
$SDONE:
  mov.u32 %r16, 0;
  st.shared.f32 [%r16], %f4;
  mad.lo.u32 %r14, %r22, %r21, %r5;
  mul.wide.u32 %rd8, %r14, 4;
  add.u64 %rd9, %rd3, %rd8;
  st.global.f32 [%rd9], %f4;
$WAIT:
  bar.sync 0;
  mov.u32 %r15, 0;
  ld.shared.f32 %f6, [%r15];
  mov.u32 %r8, %r3;
$SUB:
  setp.ge.u32 %p5, %r8, %r20;
  @%p5 bra $DONE;
  add.u32 %r9, %r6, %r8;
  mul.wide.u32 %rd10, %r9, 4;
  add.u64 %rd11, %rd2, %rd10;
  ld.global.f32 %f7, [%rd11];
  add.u32 %r10, %r7, %r8;
  mul.wide.u32 %rd12, %r10, 4;
  add.u64 %rd13, %rd1, %rd12;
  ld.global.f32 %f8, [%rd13];
  mul.f32 %f9, %f6, %f7;
  sub.f32 %f10, %f8, %f9;
  st.global.f32 [%rd13], %f10;
  add.u32 %r8, %r8, %r2;
  bra $SUB;
$DONE:
  ret;
}"#,
    )
}

/// Builds GRAMSCHM: `3·M` kernels over an `N × M` column-major matrix.
pub fn build(scale: Scale) -> Application {
    let (n, m): (u32, u32) = match scale {
        Scale::Full => (256, 64), // 192 kernels
        Scale::Small => (32, 8),  // 24 kernels
    };
    let block = 128u32;
    let mut b = AppBuilder::new("GRAMSCHM");
    let a = b.alloc_f32(n as u64 * m as u64);
    let q = b.alloc_f32(n as u64 * m as u64);
    let r = b.alloc_f32(m as u64);
    let ro = b.alloc_f32(m as u64 * m as u64);
    b.h2d(a, test_data(n as u64 * m as u64, 81));
    let kn = norm_kernel();
    let kz = normalize_kernel();
    let ku = update_kernel();
    for k in 0..m {
        b.launch(
            &kn,
            1,
            128,
            vec![
                ArgValue::Ptr(a.base),
                ArgValue::Ptr(r.base),
                ArgValue::U32(n),
                ArgValue::U32(k),
            ],
        );
        b.launch(
            &kz,
            blocks_for(n as u64, block),
            block,
            vec![
                ArgValue::Ptr(a.base),
                ArgValue::Ptr(r.base),
                ArgValue::Ptr(q.base),
                ArgValue::U32(n),
                ArgValue::U32(k),
            ],
        );
        // One block per trailing column.
        b.launch(
            &ku,
            (m - k).max(1),
            block,
            vec![
                ArgValue::Ptr(a.base),
                ArgValue::Ptr(q.base),
                ArgValue::Ptr(ro.base),
                ArgValue::U32(n),
                ArgValue::U32(m),
                ArgValue::U32(k),
            ],
        );
    }
    b.d2h(q);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_count_matches_table2() {
        assert_eq!(build(Scale::Full).num_kernels(), 192);
    }

    #[test]
    fn columns_become_orthonormal() {
        let app = build(Scale::Small);
        let mem = app.run_serialized().unwrap();
        let (n, m) = (32usize, 8usize);
        let q = app.space.allocs()[1];
        let qv = mem.copy_to_host_f32(q.base, n * m);
        let dot =
            |a: usize, b: usize| -> f32 { (0..n).map(|i| qv[a * n + i] * qv[b * n + i]).sum() };
        for k in 0..m {
            assert!((dot(k, k) - 1.0).abs() < 1e-2, "‖Q[:,{k}]‖ = {}", dot(k, k));
            for j in 0..k {
                assert!(dot(j, k).abs() < 1e-2, "Q[:,{j}]·Q[:,{k}] = {}", dot(j, k));
            }
        }
    }
}
