//! BICG (PolyBench): the BiCG sub-kernel of the BiCGStab linear solver.
//! Two kernels, `q = A·p` and `s = Aᵀ·r`, which only *read* the shared
//! matrix — they are data-independent (Table II pattern 7) and
//! BlockMaestro runs them concurrently.

use crate::common::{
    blocks_for, kernel, matvec_col_kernel, matvec_row_kernel, test_data, AppBuilder, Scale,
};
use bm_cmdq::Application;
use bm_ptx::kernel::ArgValue;

/// Builds BICG at the given scale (`rows × cols` matrix).
pub fn build(scale: Scale) -> Application {
    let n: u32 = match scale {
        Scale::Full => 1024,
        Scale::Small => 32,
    };
    let block = 256u32;
    let elems = (n as u64) * (n as u64);
    let mut b = AppBuilder::new("BICG");
    let a = b.alloc_f32(elems);
    let p = b.alloc_f32(n as u64);
    let r = b.alloc_f32(n as u64);
    let q = b.alloc_f32(n as u64);
    let s = b.alloc_f32(n as u64);
    b.h2d(a, test_data(elems, 5));
    b.h2d(p, test_data(n as u64, 6));
    b.h2d(r, test_data(n as u64, 7));
    let row = kernel(&matvec_row_kernel("bicg_q"));
    let col = kernel(&matvec_col_kernel("bicg_s"));
    let grid = blocks_for(n as u64, block);
    b.launch(
        &row,
        grid,
        block,
        vec![
            ArgValue::Ptr(a.base),
            ArgValue::Ptr(p.base),
            ArgValue::Ptr(q.base),
            ArgValue::U32(n),
            ArgValue::U32(n),
        ],
    );
    b.launch(
        &col,
        grid,
        block,
        vec![
            ArgValue::Ptr(a.base),
            ArgValue::Ptr(r.base),
            ArgValue::Ptr(s.base),
            ArgValue::U32(n),
            ArgValue::U32(n),
        ],
    );
    b.d2h(q);
    b.d2h(s);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_independent_kernels() {
        let app = build(Scale::Small);
        assert_eq!(app.num_kernels(), 2);
        let mem = app.run_serialized().unwrap();
        let n = 32usize;
        let allocs = app.space.allocs();
        let av = mem.copy_to_host_f32(allocs[0].base, n * n);
        let pv = mem.copy_to_host_f32(allocs[1].base, n);
        let qv = mem.copy_to_host_f32(allocs[3].base, n);
        for i in [0usize, 15, 31] {
            let want: f32 = (0..n).map(|j| av[i * n + j] * pv[j]).sum();
            assert!((qv[i] - want).abs() < 1e-3);
        }
    }
}
