//! HS — Hotspot (Rodinia): iterative 2-D thermal simulation. Each kernel
//! advances the temperature grid one step, ping-ponging between two
//! buffers; thread blocks own row bands and read a one-row halo, giving
//! the *overlapped* dependency pattern (Table II pattern 6).

use crate::common::{kernel, test_data, AppBuilder, Scale};
use bm_cmdq::Application;
use bm_ptx::kernel::ArgValue;
use std::sync::Arc;

/// Row-band stencil kernel: the block owns `R` rows of a `H × W` grid
/// (`W` = blockDim.x, one thread per column), updating interior cells from
/// the 4-neighbourhood plus a power term and copying boundary cells.
fn hotspot_kernel() -> Arc<bm_ptx::kernel::Kernel> {
    kernel(
        r#".entry hotspot(.param .u64 IN, .param .u64 POWER, .param .u64 OUT,
                          .param .u32 h, .param .u32 r)
{
  ld.param.u64 %rd1, [IN];
  ld.param.u64 %rd2, [POWER];
  ld.param.u64 %rd3, [OUT];
  ld.param.u32 %r20, [h];
  ld.param.u32 %r21, [r];
  mov.u32 %r1, %ctaid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %tid.x;
  mul.lo.u32 %r5, %r1, %r21;
  mov.u32 %r6, 0;
$ROW:
  setp.ge.u32 %p1, %r6, %r21;
  @%p1 bra $END;
  add.u32 %r7, %r5, %r6;
  setp.ge.u32 %p2, %r7, %r20;
  @%p2 bra $NEXT;
  mad.lo.u32 %r8, %r7, %r2, %r3;
  mul.wide.u32 %rd4, %r8, 4;
  setp.eq.u32 %p3, %r7, 0;
  @%p3 bra $COPY;
  sub.u32 %r9, %r20, 1;
  setp.ge.u32 %p4, %r7, %r9;
  @%p4 bra $COPY;
  setp.eq.u32 %p5, %r3, 0;
  @%p5 bra $COPY;
  sub.u32 %r10, %r2, 1;
  setp.ge.u32 %p6, %r3, %r10;
  @%p6 bra $COPY;
  add.u64 %rd5, %rd1, %rd4;
  ld.global.f32 %f1, [%rd5];
  sub.u32 %r11, %r8, %r2;
  mul.wide.u32 %rd6, %r11, 4;
  add.u64 %rd7, %rd1, %rd6;
  ld.global.f32 %f2, [%rd7];
  add.u32 %r12, %r8, %r2;
  mul.wide.u32 %rd8, %r12, 4;
  add.u64 %rd9, %rd1, %rd8;
  ld.global.f32 %f3, [%rd9];
  ld.global.f32 %f4, [%rd5-4];
  ld.global.f32 %f5, [%rd5+4];
  add.u64 %rd10, %rd2, %rd4;
  ld.global.f32 %f6, [%rd10];
  add.f32 %f7, %f2, %f3;
  add.f32 %f8, %f4, %f5;
  add.f32 %f9, %f7, %f8;
  mul.f32 %f10, %f1, 0f40800000;
  sub.f32 %f11, %f9, %f10;
  fma.rn.f32 %f12, %f11, 0f3E000000, %f1;
  fma.rn.f32 %f13, %f6, 0f3D800000, %f12;
  add.u64 %rd11, %rd3, %rd4;
  st.global.f32 [%rd11], %f13;
  bra $NEXT;
$COPY:
  add.u64 %rd12, %rd1, %rd4;
  ld.global.f32 %f14, [%rd12];
  add.u64 %rd13, %rd3, %rd4;
  st.global.f32 [%rd13], %f14;
$NEXT:
  add.u32 %r6, %r6, 1;
  bra $ROW;
$END:
  ret;
}"#,
    )
}

/// Builds Hotspot: `iters` ping-pong steps over an `h × w` grid.
pub fn build(scale: Scale) -> Application {
    let (h, w, rows_per_tb, iters) = match scale {
        // 256 row-band TBs per kernel: more resident-TB demand than the
        // 28x8 slots available at 256 threads/block, so fine-grain
        // dependency resolution has waves to overlap.
        Scale::Full => (512u32, 256u32, 2u32, 10usize),
        Scale::Small => (32, 64, 4, 4),
    };
    let elems = (h as u64) * (w as u64);
    let mut b = AppBuilder::new("HS");
    let t0 = b.alloc_f32(elems);
    let t1 = b.alloc_f32(elems);
    let power = b.alloc_f32(elems);
    b.h2d(t0, test_data(elems, 31));
    b.h2d(power, test_data(elems, 32));
    let k = hotspot_kernel();
    let grid = h.div_ceil(rows_per_tb);
    let mut bufs = [t0, t1];
    for _ in 0..iters {
        b.launch(
            &k,
            grid,
            w,
            vec![
                ArgValue::Ptr(bufs[0].base),
                ArgValue::Ptr(power.base),
                ArgValue::Ptr(bufs[1].base),
                ArgValue::U32(h),
                ArgValue::U32(rows_per_tb),
            ],
        );
        bufs.swap(0, 1);
    }
    b.d2h(bufs[0]);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bm_ptx::absint::analyze_launch;

    #[test]
    fn kernel_count_matches_table2() {
        assert_eq!(build(Scale::Full).num_kernels(), 10);
    }

    #[test]
    fn stencil_runs_and_stays_bounded() {
        let app = build(Scale::Small);
        let mem = app.run_serialized().unwrap();
        let out = app.space.allocs()[0]; // even number of iters -> t0
        let v = mem.copy_to_host_f32(out.base, 32 * 64);
        assert!(v.iter().all(|x| x.is_finite()));
        // Temperatures stay in a plausible range for [0,1) inputs.
        assert!(v.iter().all(|&x| (-2.0..4.0).contains(&x)));
    }

    #[test]
    fn row_bands_read_one_row_halo() {
        let app = build(Scale::Small);
        let launches = app.launches();
        let acc = analyze_launch(launches[0]);
        assert!(!acc.non_static);
        let w = 64u64 * 4;
        // Interior band 1 covers rows 4..8; reads rows 3..9.
        let t = &acc.per_tb[1];
        let (rlo, rhi) = t.reads.bounds().unwrap();
        let in_base = app.space.allocs()[0].base;
        assert!(
            rlo <= in_base + 3 * w && rlo >= in_base + 2 * w,
            "halo row above"
        );
        assert!(rhi >= in_base + 8 * w, "halo row below");
        let (wlo, whi) = t.writes.bounds().unwrap();
        let out_base = app.space.allocs()[1].base;
        assert_eq!(wlo, out_base + 4 * w);
        assert_eq!(whi, out_base + 8 * w);
    }
}
