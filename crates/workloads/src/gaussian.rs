//! GAUSSIAN (Rodinia): Gaussian elimination. Every pivot step launches two
//! small, fast kernels — Fan1 computes the column of multipliers, Fan2
//! applies the row updates — so an `n × n` system launches `2(n-1)`
//! kernels and the launch overhead dominates (the paper's biggest
//! pre-launching win). Patterns: Fan1→Fan2 is 1-to-n, Fan2→Fan1 n-to-1
//! (Table II patterns 4, 5).

use crate::common::{blocks_for, kernel, test_data, AppBuilder, Scale};
use bm_cmdq::Application;
use bm_ptx::kernel::{ArgValue, Kernel};
use std::sync::Arc;

/// Fan1: `m[i] = A[i][t] / A[t][t]` for `i in t+1..n`.
fn fan1_kernel() -> Arc<Kernel> {
    kernel(
        r#".entry fan1(.param .u64 A, .param .u64 M, .param .u32 n, .param .u32 t)
{
  ld.param.u64 %rd1, [A];
  ld.param.u64 %rd2, [M];
  ld.param.u32 %r20, [n];
  ld.param.u32 %r21, [t];
  mov.u32 %r1, %ctaid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %tid.x;
  mad.lo.u32 %r4, %r1, %r2, %r3;
  sub.u32 %r5, %r20, %r21;
  sub.u32 %r5, %r5, 1;
  setp.ge.u32 %p1, %r4, %r5;
  @%p1 bra $DONE;
  add.u32 %r6, %r4, %r21;
  add.u32 %r6, %r6, 1;
  mad.lo.u32 %r7, %r6, %r20, %r21;
  mul.wide.u32 %rd3, %r7, 4;
  add.u64 %rd4, %rd1, %rd3;
  ld.global.f32 %f1, [%rd4];
  mad.lo.u32 %r8, %r21, %r20, %r21;
  mul.wide.u32 %rd5, %r8, 4;
  add.u64 %rd6, %rd1, %rd5;
  ld.global.f32 %f2, [%rd6];
  div.rn.f32 %f3, %f1, %f2;
  mul.wide.u32 %rd7, %r6, 4;
  add.u64 %rd8, %rd2, %rd7;
  st.global.f32 [%rd8], %f3;
$DONE:
  ret;
}"#,
    )
}

/// Fan2: `A[i][j] -= m[i] · A[t][j]` for `i in t+1..n`, all `j`;
/// additionally `B[i] -= m[i] · B[t]` on the `j == 0` lane.
fn fan2_kernel() -> Arc<Kernel> {
    kernel(
        r#".entry fan2(.param .u64 A, .param .u64 B, .param .u64 M,
                       .param .u32 n, .param .u32 t)
{
  ld.param.u64 %rd1, [A];
  ld.param.u64 %rd2, [B];
  ld.param.u64 %rd3, [M];
  ld.param.u32 %r20, [n];
  ld.param.u32 %r21, [t];
  mov.u32 %r1, %ctaid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %tid.x;
  mad.lo.u32 %r4, %r1, %r2, %r3;
  sub.u32 %r5, %r20, %r21;
  sub.u32 %r5, %r5, 1;
  mul.lo.u32 %r6, %r5, %r20;
  setp.ge.u32 %p1, %r4, %r6;
  @%p1 bra $DONE;
  div.u32 %r7, %r4, %r20;
  rem.u32 %r8, %r4, %r20;
  add.u32 %r9, %r7, %r21;
  add.u32 %r9, %r9, 1;
  mul.wide.u32 %rd4, %r9, 4;
  add.u64 %rd5, %rd3, %rd4;
  ld.global.f32 %f1, [%rd5];
  mad.lo.u32 %r10, %r21, %r20, %r8;
  mul.wide.u32 %rd6, %r10, 4;
  add.u64 %rd7, %rd1, %rd6;
  ld.global.f32 %f2, [%rd7];
  mad.lo.u32 %r11, %r9, %r20, %r8;
  mul.wide.u32 %rd8, %r11, 4;
  add.u64 %rd9, %rd1, %rd8;
  ld.global.f32 %f3, [%rd9];
  mul.f32 %f4, %f1, %f2;
  sub.f32 %f5, %f3, %f4;
  st.global.f32 [%rd9], %f5;
  setp.ne.u32 %p2, %r8, 0;
  @%p2 bra $DONE;
  mul.wide.u32 %rd10, %r21, 4;
  add.u64 %rd11, %rd2, %rd10;
  ld.global.f32 %f6, [%rd11];
  mul.wide.u32 %rd12, %r9, 4;
  add.u64 %rd13, %rd2, %rd12;
  ld.global.f32 %f7, [%rd13];
  mul.f32 %f8, %f1, %f6;
  sub.f32 %f9, %f7, %f8;
  st.global.f32 [%rd13], %f9;
$DONE:
  ret;
}"#,
    )
}

/// Builds GAUSSIAN for an `n × n` system: `2(n-1)` kernels.
pub fn build(scale: Scale) -> Application {
    let n: u32 = match scale {
        Scale::Full => 256, // 510 kernels
        Scale::Small => 16, // 30 kernels
    };
    let block = 256u32;
    let elems = (n as u64) * (n as u64);
    let mut b = AppBuilder::new("GAUSSIAN");
    let a = b.alloc_f32(elems);
    let bv = b.alloc_f32(n as u64);
    let m = b.alloc_f32(n as u64);
    // Diagonally-dominant matrix keeps the elimination well-conditioned.
    let mut data = test_data(elems, 71);
    for i in 0..n as usize {
        data[i * n as usize + i] += n as f32;
    }
    b.h2d(a, data);
    b.h2d(bv, test_data(n as u64, 72));
    let f1 = fan1_kernel();
    let f2 = fan2_kernel();
    for t in 0..n - 1 {
        let rows = (n - t - 1) as u64;
        b.launch(
            &f1,
            blocks_for(rows, block),
            block,
            vec![
                ArgValue::Ptr(a.base),
                ArgValue::Ptr(m.base),
                ArgValue::U32(n),
                ArgValue::U32(t),
            ],
        );
        b.launch(
            &f2,
            blocks_for(rows * n as u64, block),
            block,
            vec![
                ArgValue::Ptr(a.base),
                ArgValue::Ptr(bv.base),
                ArgValue::Ptr(m.base),
                ArgValue::U32(n),
                ArgValue::U32(t),
            ],
        );
    }
    b.d2h(a);
    b.d2h(bv);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_count_matches_table2() {
        assert_eq!(build(Scale::Full).num_kernels(), 510);
    }

    #[test]
    fn elimination_produces_upper_triangular() {
        let app = build(Scale::Small);
        let mem = app.run_serialized().unwrap();
        let n = 16usize;
        let a = app.space.allocs()[0];
        let av = mem.copy_to_host_f32(a.base, n * n);
        // Below-diagonal entries should be (numerically) eliminated.
        for i in 1..n {
            for j in 0..i {
                assert!(
                    av[i * n + j].abs() < 1e-2,
                    "A[{i}][{j}] = {} not eliminated",
                    av[i * n + j]
                );
            }
        }
        // Diagonal stays dominant (non-zero pivots).
        for i in 0..n {
            assert!(av[i * n + i].abs() > 1.0);
        }
    }
}
