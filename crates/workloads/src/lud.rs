//! LUD (Rodinia): blocked LU decomposition of an `N × N` matrix with
//! block size `B`. Iteration `t` launches a diagonal kernel (in-place
//! Doolittle factorization of block `(t,t)`), a perimeter kernel (solves
//! the block row/column against the diagonal factors), and an internal
//! kernel (rank-B update of the trailing submatrix); a final diagonal
//! kernel closes the factorization: `3(T-1) + 1` kernels (46 for `T=16`).
//! Patterns: 1-to-n (diag→perimeter), n-to-1 and 1-to-1 across
//! iterations (Table II: 3, 4, 5).

use crate::common::{kernel, test_data, AppBuilder, Scale};
use bm_cmdq::Application;
use bm_ptx::kernel::{ArgValue, Kernel};
use std::sync::Arc;

/// Diagonal kernel: one block of `B×B` threads factorizes block `(t,t)`
/// in place (Doolittle, no pivoting), synchronizing per elimination step.
fn diag_kernel() -> Arc<Kernel> {
    kernel(
        r#".entry lud_diag(.param .u64 A, .param .u32 n, .param .u32 t, .param .u32 bs)
{
  ld.param.u64 %rd1, [A];
  ld.param.u32 %r20, [n];
  ld.param.u32 %r21, [t];
  ld.param.u32 %r22, [bs];
  mov.u32 %r3, %tid.x;
  div.u32 %r5, %r3, %r22;
  rem.u32 %r6, %r3, %r22;
  mul.lo.u32 %r7, %r21, %r22;
  add.u32 %r8, %r7, %r5;
  add.u32 %r9, %r7, %r6;
  mad.lo.u32 %r10, %r8, %r20, %r9;
  mul.wide.u32 %rd2, %r10, 4;
  add.u64 %rd3, %rd1, %rd2;
  mov.u32 %r11, 0;
  sub.u32 %r12, %r22, 1;
$KLOOP:
  setp.ge.u32 %p1, %r11, %r12;
  @%p1 bra $END;
  bar.sync 0;
  // Phase 1: column scale — ti > k, tj == k.
  setp.le.u32 %p2, %r5, %r11;
  @%p2 bra $P2;
  setp.ne.u32 %p3, %r6, %r11;
  @%p3 bra $P2;
  add.u32 %r13, %r7, %r11;
  mad.lo.u32 %r14, %r13, %r20, %r13;
  mul.wide.u32 %rd4, %r14, 4;
  add.u64 %rd5, %rd1, %rd4;
  ld.global.f32 %f1, [%rd5];
  ld.global.f32 %f2, [%rd3];
  div.rn.f32 %f3, %f2, %f1;
  st.global.f32 [%rd3], %f3;
$P2:
  bar.sync 0;
  // Phase 2: trailing update — ti > k, tj > k.
  setp.le.u32 %p4, %r5, %r11;
  @%p4 bra $NEXT;
  setp.le.u32 %p5, %r6, %r11;
  @%p5 bra $NEXT;
  add.u32 %r13, %r7, %r11;
  mad.lo.u32 %r15, %r8, %r20, %r13;
  mul.wide.u32 %rd6, %r15, 4;
  add.u64 %rd7, %rd1, %rd6;
  ld.global.f32 %f4, [%rd7];
  mad.lo.u32 %r16, %r13, %r20, %r9;
  mul.wide.u32 %rd8, %r16, 4;
  add.u64 %rd9, %rd1, %rd8;
  ld.global.f32 %f5, [%rd9];
  ld.global.f32 %f6, [%rd3];
  mul.f32 %f7, %f4, %f5;
  sub.f32 %f8, %f6, %f7;
  st.global.f32 [%rd3], %f8;
$NEXT:
  add.u32 %r11, %r11, 1;
  bra $KLOOP;
$END:
  ret;
}"#,
    )
}

/// Perimeter kernel: `2(T-t-1)` blocks. The first half solves row blocks
/// `(t, t+1+b)` against unit-lower `L` (forward substitution); the second
/// half solves column blocks `(t+1+b, t)` against upper `U`.
fn perimeter_kernel() -> Arc<Kernel> {
    kernel(
        r#".entry lud_perimeter(.param .u64 A, .param .u32 n, .param .u32 t,
                                .param .u32 bs, .param .u32 half)
{
  ld.param.u64 %rd1, [A];
  ld.param.u32 %r20, [n];
  ld.param.u32 %r21, [t];
  ld.param.u32 %r22, [bs];
  ld.param.u32 %r23, [half];
  mov.u32 %r1, %ctaid.x;
  mov.u32 %r3, %tid.x;
  div.u32 %r5, %r3, %r22;
  rem.u32 %r6, %r3, %r22;
  mul.lo.u32 %r7, %r21, %r22;
  // Diagonal block corner element address helper base: (tB + x)*n + tB + y.
  setp.ge.u32 %p1, %r1, %r23;
  @%p1 bra $COLS;
  // Row block (t, t+1+ctaid): forward substitution with unit L.
  add.u32 %r8, %r21, 1;
  add.u32 %r8, %r8, %r1;
  mul.lo.u32 %r9, %r8, %r22;
  add.u32 %r10, %r7, %r5;
  add.u32 %r11, %r9, %r6;
  mad.lo.u32 %r12, %r10, %r20, %r11;
  mul.wide.u32 %rd2, %r12, 4;
  add.u64 %rd3, %rd1, %rd2;
  mov.u32 %r13, 0;
  sub.u32 %r14, %r22, 1;
$RLOOP:
  setp.ge.u32 %p2, %r13, %r14;
  @%p2 bra $END;
  bar.sync 0;
  setp.le.u32 %p3, %r5, %r13;
  @%p3 bra $RNEXT;
  add.u32 %r15, %r7, %r13;
  mad.lo.u32 %r16, %r10, %r20, %r15;
  mul.wide.u32 %rd4, %r16, 4;
  add.u64 %rd5, %rd1, %rd4;
  ld.global.f32 %f1, [%rd5];
  add.u32 %r17, %r9, %r6;
  mad.lo.u32 %r18, %r15, %r20, %r17;
  mul.wide.u32 %rd6, %r18, 4;
  add.u64 %rd7, %rd1, %rd6;
  ld.global.f32 %f2, [%rd7];
  ld.global.f32 %f3, [%rd3];
  mul.f32 %f4, %f1, %f2;
  sub.f32 %f5, %f3, %f4;
  st.global.f32 [%rd3], %f5;
$RNEXT:
  add.u32 %r13, %r13, 1;
  bra $RLOOP;
$COLS:
  // Column block (t+1+(ctaid-half), t): solve X·U = A column by column.
  sub.u32 %r8, %r1, %r23;
  add.u32 %r8, %r8, %r21;
  add.u32 %r8, %r8, 1;
  mul.lo.u32 %r9, %r8, %r22;
  add.u32 %r10, %r9, %r5;
  add.u32 %r11, %r7, %r6;
  mad.lo.u32 %r12, %r10, %r20, %r11;
  mul.wide.u32 %rd2, %r12, 4;
  add.u64 %rd3, %rd1, %rd2;
  mov.u32 %r13, 0;
$CLOOP:
  setp.ge.u32 %p4, %r13, %r22;
  @%p4 bra $END;
  bar.sync 0;
  setp.ne.u32 %p5, %r6, %r13;
  @%p5 bra $CNEXT;
  // acc = sum_{s<k} X[ti][s] * U[s][k]
  mov.u32 %r15, 0;
  mov.f32 %f1, 0f00000000;
$CSUM:
  setp.ge.u32 %p6, %r15, %r13;
  @%p6 bra $CDIV;
  add.u32 %r16, %r7, %r15;
  mad.lo.u32 %r17, %r10, %r20, %r16;
  mul.wide.u32 %rd4, %r17, 4;
  add.u64 %rd5, %rd1, %rd4;
  ld.global.f32 %f2, [%rd5];
  add.u32 %r18, %r7, %r13;
  mad.lo.u32 %r19, %r16, %r20, %r18;
  mul.wide.u32 %rd6, %r19, 4;
  add.u64 %rd7, %rd1, %rd6;
  ld.global.f32 %f3, [%rd7];
  fma.rn.f32 %f1, %f2, %f3, %f1;
  add.u32 %r15, %r15, 1;
  bra $CSUM;
$CDIV:
  add.u32 %r18, %r7, %r13;
  mad.lo.u32 %r19, %r18, %r20, %r18;
  mul.wide.u32 %rd8, %r19, 4;
  add.u64 %rd9, %rd1, %rd8;
  ld.global.f32 %f4, [%rd9];
  ld.global.f32 %f5, [%rd3];
  sub.f32 %f6, %f5, %f1;
  div.rn.f32 %f7, %f6, %f4;
  st.global.f32 [%rd3], %f7;
$CNEXT:
  add.u32 %r13, %r13, 1;
  bra $CLOOP;
$END:
  ret;
}"#,
    )
}

/// Internal kernel: `(T-t-1)²` blocks; block `(i,j)` receives the rank-B
/// update `A(i,j) -= L(i,t) · U(t,j)`.
fn internal_kernel() -> Arc<Kernel> {
    kernel(
        r#".entry lud_internal(.param .u64 A, .param .u32 n, .param .u32 t,
                               .param .u32 bs, .param .u32 width)
{
  ld.param.u64 %rd1, [A];
  ld.param.u32 %r20, [n];
  ld.param.u32 %r21, [t];
  ld.param.u32 %r22, [bs];
  ld.param.u32 %r23, [width];
  mov.u32 %r1, %ctaid.x;
  mov.u32 %r3, %tid.x;
  div.u32 %r5, %r3, %r22;
  rem.u32 %r6, %r3, %r22;
  div.u32 %r7, %r1, %r23;
  rem.u32 %r8, %r1, %r23;
  add.u32 %r9, %r21, 1;
  add.u32 %r10, %r9, %r7;
  add.u32 %r11, %r9, %r8;
  mul.lo.u32 %r12, %r21, %r22;
  mul.lo.u32 %r13, %r10, %r22;
  mul.lo.u32 %r14, %r11, %r22;
  add.u32 %r15, %r13, %r5;
  add.u32 %r16, %r14, %r6;
  mad.lo.u32 %r17, %r15, %r20, %r16;
  mul.wide.u32 %rd2, %r17, 4;
  add.u64 %rd3, %rd1, %rd2;
  mov.u32 %r18, 0;
  mov.f32 %f1, 0f00000000;
$LOOP:
  setp.ge.u32 %p1, %r18, %r22;
  @%p1 bra $STORE;
  add.u32 %r19, %r12, %r18;
  mad.lo.u32 %r24, %r15, %r20, %r19;
  mul.wide.u32 %rd4, %r24, 4;
  add.u64 %rd5, %rd1, %rd4;
  ld.global.f32 %f2, [%rd5];
  mad.lo.u32 %r25, %r19, %r20, %r16;
  mul.wide.u32 %rd6, %r25, 4;
  add.u64 %rd7, %rd1, %rd6;
  ld.global.f32 %f3, [%rd7];
  fma.rn.f32 %f1, %f2, %f3, %f1;
  add.u32 %r18, %r18, 1;
  bra $LOOP;
$STORE:
  ld.global.f32 %f4, [%rd3];
  sub.f32 %f5, %f4, %f1;
  st.global.f32 [%rd3], %f5;
  ret;
}"#,
    )
}

/// Builds LUD: `3(T-1) + 1` kernels over an `N × N` matrix, `N = B·T`.
pub fn build(scale: Scale) -> Application {
    let (bs, t_blocks): (u32, u32) = match scale {
        Scale::Full => (16, 16), // N=256, 46 kernels
        Scale::Small => (8, 4),  // N=32, 10 kernels
    };
    let n = bs * t_blocks;
    let elems = (n as u64) * (n as u64);
    let mut b = AppBuilder::new("LUD");
    let a = b.alloc_f32(elems);
    // Diagonally dominant input for a stable factorization.
    let mut data = test_data(elems, 91);
    for i in 0..n as usize {
        data[i * n as usize + i] += n as f32;
    }
    b.h2d(a, data);
    let kd = diag_kernel();
    let kp = perimeter_kernel();
    let ki = internal_kernel();
    let threads = bs * bs;
    for t in 0..t_blocks - 1 {
        let rem = t_blocks - t - 1;
        b.launch(
            &kd,
            1,
            threads,
            vec![
                ArgValue::Ptr(a.base),
                ArgValue::U32(n),
                ArgValue::U32(t),
                ArgValue::U32(bs),
            ],
        );
        b.launch(
            &kp,
            2 * rem,
            threads,
            vec![
                ArgValue::Ptr(a.base),
                ArgValue::U32(n),
                ArgValue::U32(t),
                ArgValue::U32(bs),
                ArgValue::U32(rem),
            ],
        );
        b.launch(
            &ki,
            rem * rem,
            threads,
            vec![
                ArgValue::Ptr(a.base),
                ArgValue::U32(n),
                ArgValue::U32(t),
                ArgValue::U32(bs),
                ArgValue::U32(rem),
            ],
        );
    }
    b.launch(
        &kd,
        1,
        threads,
        vec![
            ArgValue::Ptr(a.base),
            ArgValue::U32(n),
            ArgValue::U32(t_blocks - 1),
            ArgValue::U32(bs),
        ],
    );
    b.d2h(a);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_count_matches_table2() {
        assert_eq!(build(Scale::Full).num_kernels(), 46);
    }

    #[test]
    fn lu_factors_reconstruct_the_matrix() {
        let app = build(Scale::Small);
        let mem = app.run_serialized().unwrap();
        let n = 32usize;
        // Original input.
        let mut orig = test_data((n * n) as u64, 91);
        for i in 0..n {
            orig[i * n + i] += n as f32;
        }
        let a = app.space.allocs()[0];
        let lu = mem.copy_to_host_f32(a.base, n * n);
        // Reconstruct L·U (unit-diagonal L below, U on/above diagonal).
        for i in (0..n).step_by(7) {
            for j in (0..n).step_by(5) {
                let mut acc = 0.0f32;
                for k in 0..=i.min(j) {
                    let l = if k == i { 1.0 } else { lu[i * n + k] };
                    let u = lu[k * n + j];
                    acc += l * u;
                }
                let rel = (acc - orig[i * n + j]).abs() / orig[i * n + j].abs().max(1.0);
                assert!(
                    rel < 5e-2,
                    "LU reconstruction off at ({i},{j}): {acc} vs {}",
                    orig[i * n + j]
                );
            }
        }
    }
}
