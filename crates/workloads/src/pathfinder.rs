//! PATH — PathFinder (Rodinia): dynamic-programming search for the
//! cheapest path down a grid. Each kernel advances one row step; a cell
//! reads the three neighbours of the previous row, so thread blocks read a
//! one-block halo — the *overlapped* pattern (Table II pattern 6).

use crate::common::{blocks_for, kernel, test_data, AppBuilder, Scale};
use bm_cmdq::Application;
use bm_ptx::kernel::ArgValue;
use std::sync::Arc;

/// One DP step: `dst[j] = wall[j] + min(src[j-1], src[j], src[j+1])`
/// with clamped edges (branch-free via `min`/`max`).
fn path_kernel() -> Arc<bm_ptx::kernel::Kernel> {
    kernel(
        r#".entry pathfinder(.param .u64 SRC, .param .u64 WALL, .param .u64 DST,
                             .param .u32 w)
{
  ld.param.u64 %rd1, [SRC];
  ld.param.u64 %rd2, [WALL];
  ld.param.u64 %rd3, [DST];
  ld.param.u32 %r20, [w];
  mov.u32 %r1, %ctaid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %tid.x;
  mad.lo.u32 %r4, %r1, %r2, %r3;
  setp.ge.u32 %p1, %r4, %r20;
  @%p1 bra $DONE;
  max.u32 %r5, %r4, 1;
  sub.u32 %r5, %r5, 1;
  add.u32 %r6, %r4, 1;
  sub.u32 %r7, %r20, 1;
  min.u32 %r6, %r6, %r7;
  mul.wide.u32 %rd4, %r5, 4;
  add.u64 %rd5, %rd1, %rd4;
  ld.global.f32 %f1, [%rd5];
  mul.wide.u32 %rd6, %r4, 4;
  add.u64 %rd7, %rd1, %rd6;
  ld.global.f32 %f2, [%rd7];
  mul.wide.u32 %rd8, %r6, 4;
  add.u64 %rd9, %rd1, %rd8;
  ld.global.f32 %f3, [%rd9];
  min.f32 %f4, %f1, %f2;
  min.f32 %f4, %f4, %f3;
  add.u64 %rd10, %rd2, %rd6;
  ld.global.f32 %f5, [%rd10];
  add.f32 %f6, %f4, %f5;
  add.u64 %rd11, %rd3, %rd6;
  st.global.f32 [%rd11], %f6;
$DONE:
  ret;
}"#,
    )
}

/// Builds PathFinder: `steps` DP row steps over a width-`w` grid.
pub fn build(scale: Scale) -> Application {
    let (w, steps) = match scale {
        Scale::Full => (65_536u64, 5usize),
        Scale::Small => (1_024, 5),
    };
    let block = 256u32;
    let mut b = AppBuilder::new("PATH");
    let src = b.alloc_f32(w);
    let dst = b.alloc_f32(w);
    let wall = b.alloc_f32(w * steps as u64);
    b.h2d(src, test_data(w, 41));
    b.h2d(wall, test_data(w * steps as u64, 42));
    let k = path_kernel();
    let mut bufs = [src, dst];
    for s in 0..steps {
        b.launch(
            &k,
            blocks_for(w, block),
            block,
            vec![
                ArgValue::Ptr(bufs[0].base),
                ArgValue::Ptr(wall.base + 4 * w * s as u64),
                ArgValue::Ptr(bufs[1].base),
                ArgValue::U32(w as u32),
            ],
        );
        bufs.swap(0, 1);
    }
    b.d2h(bufs[0]);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_count_matches_table2() {
        assert_eq!(build(Scale::Full).num_kernels(), 5);
    }

    #[test]
    fn dp_matches_host_reference() {
        let app = build(Scale::Small);
        let mem = app.run_serialized().unwrap();
        let w = 1024usize;
        let steps = 5usize;
        let src0 = test_data(w as u64, 41);
        let wall = test_data((w * steps) as u64, 42);
        let mut cur = src0;
        for s in 0..steps {
            let mut next = vec![0.0f32; w];
            for j in 0..w {
                let lo = cur[j.saturating_sub(1)];
                let mid = cur[j];
                let hi = cur[(j + 1).min(w - 1)];
                next[j] = wall[s * w + j] + lo.min(mid).min(hi);
            }
            cur = next;
        }
        // Odd number of steps -> result in the second buffer.
        let out = app.space.allocs()[1];
        let got = mem.copy_to_host_f32(out.base, w);
        for j in [0usize, 1, 500, w - 1] {
            assert!(
                (got[j] - cur[j]).abs() < 1e-4,
                "col {j}: {} vs {}",
                got[j],
                cur[j]
            );
        }
    }
}
