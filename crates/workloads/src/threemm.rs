//! 3MM (PolyBench): three matrix multiplications, `E = A·B`, `F = C·D`,
//! `G = E·F`. K1 and K2 are independent (pattern 7); K3 depends on both —
//! on K2 through the consecutive-pair graph, and on K1 through a
//! skip-level gate.

use crate::common::{blocks_for, kernel, matmul_kernel, test_data, AppBuilder, Scale};
use bm_cmdq::Application;
use bm_ptx::kernel::ArgValue;

/// Builds 3MM at the given scale (square `n × n` matrices).
pub fn build(scale: Scale) -> Application {
    let n: u32 = match scale {
        Scale::Full => 256, // 256 TBs per kernel: multi-wave occupancy
        Scale::Small => 16,
    };
    let block = 256u32;
    let elems = (n as u64) * (n as u64);
    let mut b = AppBuilder::new("3MM");
    let a = b.alloc_f32(elems);
    let bb = b.alloc_f32(elems);
    let c = b.alloc_f32(elems);
    let d = b.alloc_f32(elems);
    let e = b.alloc_f32(elems);
    let f = b.alloc_f32(elems);
    let g = b.alloc_f32(elems);
    b.h2d(a, test_data(elems, 1));
    b.h2d(bb, test_data(elems, 2));
    b.h2d(c, test_data(elems, 3));
    b.h2d(d, test_data(elems, 4));
    let mm = kernel(&matmul_kernel("mm"));
    let grid = blocks_for(elems, block);
    let args = |x: u64, y: u64, z: u64| {
        vec![
            ArgValue::Ptr(x),
            ArgValue::Ptr(y),
            ArgValue::Ptr(z),
            ArgValue::U32(n),
            ArgValue::U32(n),
            ArgValue::U32(n),
        ]
    };
    b.launch(&mm, grid, block, args(a.base, bb.base, e.base)); // K1: E = A·B
    b.launch(&mm, grid, block, args(c.base, d.base, f.base)); // K2: F = C·D
    b.launch(&mm, grid, block, args(e.base, f.base, g.base)); // K3: G = E·F
    b.d2h(g);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_three_kernels_and_computes() {
        let app = build(Scale::Small);
        assert_eq!(app.num_kernels(), 3);
        let mem = app.run_serialized().unwrap();
        // Spot-check one element of G against a host reference.
        let n = 16usize;
        let allocs = app.space.allocs();
        let av = mem.copy_to_host_f32(allocs[0].base, n * n);
        let bv = mem.copy_to_host_f32(allocs[1].base, n * n);
        let cv = mem.copy_to_host_f32(allocs[2].base, n * n);
        let dv = mem.copy_to_host_f32(allocs[3].base, n * n);
        let gv = mem.copy_to_host_f32(allocs[6].base, n * n);
        let mul = |x: &[f32], y: &[f32]| -> Vec<f32> {
            let mut out = vec![0.0f32; n * n];
            for i in 0..n {
                for j in 0..n {
                    let mut acc = 0.0f32;
                    for k in 0..n {
                        acc += x[i * n + k] * y[k * n + j];
                    }
                    out[i * n + j] = acc;
                }
            }
            out
        };
        let e = mul(&av, &bv);
        let f = mul(&cv, &dv);
        let want = mul(&e, &f);
        for i in [0usize, 7, 100, n * n - 1] {
            assert!(
                (gv[i] - want[i]).abs() / want[i].abs().max(1.0) < 1e-3,
                "G[{i}] = {} want {}",
                gv[i],
                want[i]
            );
        }
    }
}
