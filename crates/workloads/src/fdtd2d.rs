//! FDTD-2D (PolyBench): 2-D finite-difference time-domain electromagnetic
//! solver. Each time step launches three kernels updating the `ey`, `ex`,
//! and `hz` fields. The `ey` and `ex` updates are mutually independent
//! (pattern 7); `hz` aggregates both fields (pattern 5/6 style halo
//! dependencies).

use crate::common::{kernel, test_data, AppBuilder, Scale};
use bm_cmdq::Application;
use bm_ptx::kernel::{ArgValue, Kernel};
use std::sync::Arc;

/// Row-band field-update kernel builder. The block owns `R` rows of a
/// `H × W` grid with one thread per column (`W` = blockDim.x).
///
/// `body` computes `%f9` (the new field value) from:
/// `%f1` = fld[i][j], `%f2` = aux[i][j], `%f3` = aux[i-1][j] (clamped),
/// `%f4` = aux[i][j-1] (clamped), `%f5` = aux2[i+1][j] (clamped),
/// `%f6` = aux2[i][j+1] (clamped).
fn field_kernel(name: &str, body: &str) -> Arc<Kernel> {
    kernel(&format!(
        r#".entry {name}(.param .u64 FLD, .param .u64 AUX, .param .u64 AUX2,
                         .param .u32 h, .param .u32 r, .param .f32 fict)
{{
  ld.param.u64 %rd1, [FLD];
  ld.param.u64 %rd2, [AUX];
  ld.param.u64 %rd3, [AUX2];
  ld.param.u32 %r20, [h];
  ld.param.u32 %r21, [r];
  ld.param.f32 %f20, [fict];
  mov.u32 %r1, %ctaid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %tid.x;
  mul.lo.u32 %r5, %r1, %r21;
  mov.u32 %r6, 0;
$ROW:
  setp.ge.u32 %p1, %r6, %r21;
  @%p1 bra $END;
  add.u32 %r7, %r5, %r6;
  setp.ge.u32 %p2, %r7, %r20;
  @%p2 bra $NEXT;
  // idx = i*W + j ; clamped neighbours.
  mad.lo.u32 %r8, %r7, %r2, %r3;
  max.u32 %r9, %r7, 1;
  sub.u32 %r9, %r9, 1;
  mad.lo.u32 %r10, %r9, %r2, %r3;
  max.u32 %r11, %r3, 1;
  sub.u32 %r11, %r11, 1;
  mad.lo.u32 %r12, %r7, %r2, %r11;
  add.u32 %r13, %r7, 1;
  sub.u32 %r14, %r20, 1;
  min.u32 %r13, %r13, %r14;
  mad.lo.u32 %r15, %r13, %r2, %r3;
  add.u32 %r16, %r3, 1;
  sub.u32 %r17, %r2, 1;
  min.u32 %r16, %r16, %r17;
  mad.lo.u32 %r18, %r7, %r2, %r16;
  mul.wide.u32 %rd4, %r8, 4;
  add.u64 %rd5, %rd1, %rd4;
  ld.global.f32 %f1, [%rd5];
  add.u64 %rd6, %rd2, %rd4;
  ld.global.f32 %f2, [%rd6];
  mul.wide.u32 %rd7, %r10, 4;
  add.u64 %rd8, %rd2, %rd7;
  ld.global.f32 %f3, [%rd8];
  mul.wide.u32 %rd9, %r12, 4;
  add.u64 %rd10, %rd2, %rd9;
  ld.global.f32 %f4, [%rd10];
  mul.wide.u32 %rd11, %r15, 4;
  add.u64 %rd12, %rd3, %rd11;
  ld.global.f32 %f5, [%rd12];
  mul.wide.u32 %rd13, %r18, 4;
  add.u64 %rd14, %rd3, %rd13;
  ld.global.f32 %f6, [%rd14];
{body}
  st.global.f32 [%rd5], %f9;
$NEXT:
  add.u32 %r6, %r6, 1;
  bra $ROW;
$END:
  ret;
}}"#
    ))
}

/// Builds FDTD-2D: `iters` steps × 3 field kernels.
pub fn build(scale: Scale) -> Application {
    let (h, w, rows_per_tb, iters) = match scale {
        // 256 row-band TBs per kernel (multi-wave at 256 threads/block).
        Scale::Full => (512u32, 256u32, 2u32, 8usize),
        Scale::Small => (32, 64, 4, 3),
    };
    let elems = (h as u64) * (w as u64);
    let mut b = AppBuilder::new("FDTD-2D");
    let ex = b.alloc_f32(elems);
    let ey = b.alloc_f32(elems);
    let hz = b.alloc_f32(elems);
    b.h2d(ex, test_data(elems, 51));
    b.h2d(ey, test_data(elems, 52));
    b.h2d(hz, test_data(elems, 53));
    // ey[i][j] -= 0.5*(hz[i][j] - hz[i-1][j]); source row folds fict in.
    let key = field_kernel(
        "fdtd_ey",
        "  sub.f32 %f7, %f2, %f3;\n  fma.rn.f32 %f8, %f7, 0fBF000000, %f1;\n  add.f32 %f9, %f8, %f20;",
    );
    // ex[i][j] -= 0.5*(hz[i][j] - hz[i][j-1]).
    let kex = field_kernel(
        "fdtd_ex",
        "  sub.f32 %f7, %f2, %f4;\n  fma.rn.f32 %f8, %f7, 0fBF000000, %f1;\n  mov.f32 %f9, %f8;",
    );
    // hz[i][j] -= 0.7*(ex[i][j+1] - ex[i][j] + ey[i+1][j] - ey[i][j]).
    let khz = field_kernel(
        "fdtd_hz",
        "  sub.f32 %f7, %f6, %f2;\n  sub.f32 %f8, %f5, %f4;\n  add.f32 %f10, %f7, %f8;\n  fma.rn.f32 %f9, %f10, 0fBF333333, %f1;",
    );
    let grid = h.div_ceil(rows_per_tb);
    for t in 0..iters {
        let fict = t as f32 * 0.01;
        // ey update reads hz (aux) only.
        b.launch(
            &key,
            grid,
            w,
            vec![
                ArgValue::Ptr(ey.base),
                ArgValue::Ptr(hz.base),
                ArgValue::Ptr(hz.base),
                ArgValue::U32(h),
                ArgValue::U32(rows_per_tb),
                ArgValue::F32(fict),
            ],
        );
        // ex update reads hz only.
        b.launch(
            &kex,
            grid,
            w,
            vec![
                ArgValue::Ptr(ex.base),
                ArgValue::Ptr(hz.base),
                ArgValue::Ptr(hz.base),
                ArgValue::U32(h),
                ArgValue::U32(rows_per_tb),
                ArgValue::F32(0.0),
            ],
        );
        // hz update reads ex (aux: center + j-1) and pairs (i+1 / j+1)
        // from ey and ex via aux2; pass aux = ex, aux2 = ey.
        b.launch(
            &khz,
            grid,
            w,
            vec![
                ArgValue::Ptr(hz.base),
                ArgValue::Ptr(ex.base),
                ArgValue::Ptr(ey.base),
                ArgValue::U32(h),
                ArgValue::U32(rows_per_tb),
                ArgValue::F32(0.0),
            ],
        );
    }
    b.d2h(hz);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_count_matches_table2() {
        assert_eq!(build(Scale::Full).num_kernels(), 24);
    }

    #[test]
    fn fields_stay_finite() {
        let app = build(Scale::Small);
        let mem = app.run_serialized().unwrap();
        let hz = app.space.allocs()[2];
        let v = mem.copy_to_host_f32(hz.base, 32 * 64);
        assert!(v.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn ey_and_ex_are_independent_wrt_writes() {
        use bm_depgraph::{build_graph, HazardMode};
        use bm_ptx::absint::analyze_launch;
        let app = build(Scale::Small);
        let l = app.launches();
        let ey = analyze_launch(l[0]);
        let ex = analyze_launch(l[1]);
        assert!(!ey.non_static && !ex.non_static);
        let g = build_graph(&ey, &ex, HazardMode::Raw);
        assert!(g.is_independent(), "ey->ex should carry no RAW edges");
    }
}
