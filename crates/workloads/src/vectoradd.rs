//! VectorAdd microbenchmark for the interconnectivity analysis (Fig. 12).
//!
//! Two equal-size kernels with a natural 1-to-1 dependency: K1 computes
//! `C = A + B`, K2 computes `D = C + B`. The Fig. 12 harness sweeps the
//! dependency *degree* by replacing K2's dependency graph with synthetic
//! n-group fully-connected patterns, exactly as the paper artificially
//! injects dependencies.

use crate::common::{blocks_for, elementwise_binop, kernel, test_data, AppBuilder};
use bm_cmdq::Application;
use bm_depgraph::BipartiteGraph;
use bm_ptx::kernel::ArgValue;

/// Threads per block used by the microbenchmark.
pub const BLOCK: u32 = 256;

/// Builds the two-kernel VectorAdd application with `n_tbs` thread blocks
/// per kernel.
pub fn build(n_tbs: u32) -> Application {
    let n = n_tbs as u64 * BLOCK as u64;
    let mut b = AppBuilder::new(format!("VECTORADD-{n_tbs}"));
    let a = b.alloc_f32(n);
    let bb = b.alloc_f32(n);
    let c = b.alloc_f32(n);
    let d = b.alloc_f32(n);
    b.h2d(a, test_data(n, 11));
    b.h2d(bb, test_data(n, 22));
    let k = kernel(&elementwise_binop("vecadd", "add.f32 %f3, %f1, %f2;"));
    let args = |x: u64, y: u64, z: u64| {
        vec![
            ArgValue::Ptr(x),
            ArgValue::Ptr(y),
            ArgValue::Ptr(z),
            ArgValue::U32(n as u32),
        ]
    };
    b.launch(
        &k,
        blocks_for(n, BLOCK),
        BLOCK,
        args(a.base, bb.base, c.base),
    );
    b.launch(
        &k,
        blocks_for(n, BLOCK),
        BLOCK,
        args(c.base, bb.base, d.base),
    );
    b.d2h(d);
    b.build()
}

/// Synthetic n-group fully-connected dependency graph of `degree` between
/// two kernels of `n_tbs` blocks each: consecutive groups of `degree` K1
/// TBs are fully connected to the matching group of K2 TBs (paper §IV-C:
/// "a degree of 4 … resulting in a 4-to-1 dependency pattern").
pub fn synthetic_degree_graph(n_tbs: u32, degree: u32) -> BipartiteGraph {
    let d = degree.clamp(1, n_tbs);
    let children: Vec<Vec<u32>> = (0..n_tbs)
        .map(|p| {
            let group = p / d;
            let start = group * d;
            let end = (start + d).min(n_tbs);
            (start..end).collect()
        })
        .collect();
    BipartiteGraph::from_children(n_tbs, n_tbs, children)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bm_depgraph::{classify, Pattern};

    #[test]
    fn app_has_two_dependent_kernels() {
        let app = build(8);
        assert_eq!(app.num_kernels(), 2);
        let mem = app.run_serialized().unwrap();
        // D = A + 2B.
        let allocs = app.space.allocs();
        let (a, b, d) = (allocs[0], allocs[1], allocs[3]);
        let av = mem.copy_to_host_f32(a.base, 4);
        let bv = mem.copy_to_host_f32(b.base, 4);
        let dv = mem.copy_to_host_f32(d.base, 4);
        for i in 0..4 {
            assert!((dv[i] - (av[i] + 2.0 * bv[i])).abs() < 1e-6);
        }
    }

    #[test]
    fn degree_one_is_one_to_one() {
        let g = synthetic_degree_graph(16, 1);
        assert_eq!(classify(&g), Pattern::OneToOne);
    }

    #[test]
    fn degree_groups_are_ngroup_fully_connected() {
        let g = synthetic_degree_graph(16, 4);
        assert_eq!(classify(&g), Pattern::NGroupFullyConnected { groups: 4 });
        assert_eq!(g.max_child_degree(), 4);
        assert_eq!(g.num_edges(), 16 * 4);
    }

    #[test]
    fn degree_n_is_fully_connected() {
        let g = synthetic_degree_graph(8, 8);
        assert!(g.is_fully_connected());
        // Degrees beyond n clamp.
        let g = synthetic_degree_graph(8, 100);
        assert!(g.is_fully_connected());
    }
}
