/root/repo/target/debug/examples/quickstart-6126f42ee7ed08dc.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-6126f42ee7ed08dc: examples/quickstart.rs

examples/quickstart.rs:
