/root/repo/target/debug/examples/fault_tolerance-2614ac0b6b0a704f.d: examples/fault_tolerance.rs

/root/repo/target/debug/examples/fault_tolerance-2614ac0b6b0a704f: examples/fault_tolerance.rs

examples/fault_tolerance.rs:
