/root/repo/target/debug/examples/stencil_wavefront-27dcf516ad9b464f.d: examples/stencil_wavefront.rs Cargo.toml

/root/repo/target/debug/examples/libstencil_wavefront-27dcf516ad9b464f.rmeta: examples/stencil_wavefront.rs Cargo.toml

examples/stencil_wavefront.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
