/root/repo/target/debug/examples/stencil_wavefront-3f1a5f7ab1fa6994.d: examples/stencil_wavefront.rs

/root/repo/target/debug/examples/stencil_wavefront-3f1a5f7ab1fa6994: examples/stencil_wavefront.rs

examples/stencil_wavefront.rs:
