/root/repo/target/debug/examples/ml_pipeline-eed5b2c0a55e25f2.d: examples/ml_pipeline.rs Cargo.toml

/root/repo/target/debug/examples/libml_pipeline-eed5b2c0a55e25f2.rmeta: examples/ml_pipeline.rs Cargo.toml

examples/ml_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
