/root/repo/target/debug/examples/dependency_inspector-d86ec247d89ee04e.d: examples/dependency_inspector.rs Cargo.toml

/root/repo/target/debug/examples/libdependency_inspector-d86ec247d89ee04e.rmeta: examples/dependency_inspector.rs Cargo.toml

examples/dependency_inspector.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
