/root/repo/target/debug/examples/ml_pipeline-33821a7f6b8e29f9.d: examples/ml_pipeline.rs

/root/repo/target/debug/examples/ml_pipeline-33821a7f6b8e29f9: examples/ml_pipeline.rs

examples/ml_pipeline.rs:
