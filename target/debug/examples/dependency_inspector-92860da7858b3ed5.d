/root/repo/target/debug/examples/dependency_inspector-92860da7858b3ed5.d: examples/dependency_inspector.rs

/root/repo/target/debug/examples/dependency_inspector-92860da7858b3ed5: examples/dependency_inspector.rs

examples/dependency_inspector.rs:
