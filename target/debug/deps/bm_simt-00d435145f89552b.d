/root/repo/target/debug/deps/bm_simt-00d435145f89552b.d: crates/simt/src/lib.rs crates/simt/src/config.rs crates/simt/src/des.rs crates/simt/src/stats.rs crates/simt/src/timing.rs Cargo.toml

/root/repo/target/debug/deps/libbm_simt-00d435145f89552b.rmeta: crates/simt/src/lib.rs crates/simt/src/config.rs crates/simt/src/des.rs crates/simt/src/stats.rs crates/simt/src/timing.rs Cargo.toml

crates/simt/src/lib.rs:
crates/simt/src/config.rs:
crates/simt/src/des.rs:
crates/simt/src/stats.rs:
crates/simt/src/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
