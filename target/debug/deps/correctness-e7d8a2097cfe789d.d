/root/repo/target/debug/deps/correctness-e7d8a2097cfe789d.d: tests/correctness.rs

/root/repo/target/debug/deps/correctness-e7d8a2097cfe789d: tests/correctness.rs

tests/correctness.rs:
