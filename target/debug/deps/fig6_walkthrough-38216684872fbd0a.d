/root/repo/target/debug/deps/fig6_walkthrough-38216684872fbd0a.d: crates/core/tests/fig6_walkthrough.rs

/root/repo/target/debug/deps/libfig6_walkthrough-38216684872fbd0a.rmeta: crates/core/tests/fig6_walkthrough.rs

crates/core/tests/fig6_walkthrough.rs:
