/root/repo/target/debug/deps/buffer_sizing-b6caca98e171bec4.d: tests/buffer_sizing.rs

/root/repo/target/debug/deps/buffer_sizing-b6caca98e171bec4: tests/buffer_sizing.rs

tests/buffer_sizing.rs:
