/root/repo/target/debug/deps/bm_cmdq-894c38044422afdb.d: crates/cmdq/src/lib.rs crates/cmdq/src/api.rs crates/cmdq/src/deps.rs crates/cmdq/src/error.rs crates/cmdq/src/reorder.rs

/root/repo/target/debug/deps/libbm_cmdq-894c38044422afdb.rlib: crates/cmdq/src/lib.rs crates/cmdq/src/api.rs crates/cmdq/src/deps.rs crates/cmdq/src/error.rs crates/cmdq/src/reorder.rs

/root/repo/target/debug/deps/libbm_cmdq-894c38044422afdb.rmeta: crates/cmdq/src/lib.rs crates/cmdq/src/api.rs crates/cmdq/src/deps.rs crates/cmdq/src/error.rs crates/cmdq/src/reorder.rs

crates/cmdq/src/lib.rs:
crates/cmdq/src/api.rs:
crates/cmdq/src/deps.rs:
crates/cmdq/src/error.rs:
crates/cmdq/src/reorder.rs:
