/root/repo/target/debug/deps/table2_benchmarks-a3710b513dab607c.d: crates/bench/src/bin/table2_benchmarks.rs

/root/repo/target/debug/deps/libtable2_benchmarks-a3710b513dab607c.rmeta: crates/bench/src/bin/table2_benchmarks.rs

crates/bench/src/bin/table2_benchmarks.rs:
