/root/repo/target/debug/deps/ext_streams-394588f1e62debb0.d: crates/bench/src/bin/ext_streams.rs Cargo.toml

/root/repo/target/debug/deps/libext_streams-394588f1e62debb0.rmeta: crates/bench/src/bin/ext_streams.rs Cargo.toml

crates/bench/src/bin/ext_streams.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
