/root/repo/target/debug/deps/bm_simt-0b581f6f05e2193a.d: crates/simt/src/lib.rs crates/simt/src/config.rs crates/simt/src/des.rs crates/simt/src/stats.rs crates/simt/src/timing.rs

/root/repo/target/debug/deps/libbm_simt-0b581f6f05e2193a.rlib: crates/simt/src/lib.rs crates/simt/src/config.rs crates/simt/src/des.rs crates/simt/src/stats.rs crates/simt/src/timing.rs

/root/repo/target/debug/deps/libbm_simt-0b581f6f05e2193a.rmeta: crates/simt/src/lib.rs crates/simt/src/config.rs crates/simt/src/des.rs crates/simt/src/stats.rs crates/simt/src/timing.rs

crates/simt/src/lib.rs:
crates/simt/src/config.rs:
crates/simt/src/des.rs:
crates/simt/src/stats.rs:
crates/simt/src/timing.rs:
