/root/repo/target/debug/deps/blockmaestro_suite-b868ecf13dd00e1b.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libblockmaestro_suite-b868ecf13dd00e1b.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
