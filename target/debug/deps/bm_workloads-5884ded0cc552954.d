/root/repo/target/debug/deps/bm_workloads-5884ded0cc552954.d: crates/workloads/src/lib.rs crates/workloads/src/alexnet.rs crates/workloads/src/bicg.rs crates/workloads/src/common.rs crates/workloads/src/fdtd2d.rs crates/workloads/src/fft.rs crates/workloads/src/gaussian.rs crates/workloads/src/gramschm.rs crates/workloads/src/hotspot.rs crates/workloads/src/lud.rs crates/workloads/src/mvt.rs crates/workloads/src/nw.rs crates/workloads/src/pathfinder.rs crates/workloads/src/threemm.rs crates/workloads/src/vectoradd.rs

/root/repo/target/debug/deps/libbm_workloads-5884ded0cc552954.rmeta: crates/workloads/src/lib.rs crates/workloads/src/alexnet.rs crates/workloads/src/bicg.rs crates/workloads/src/common.rs crates/workloads/src/fdtd2d.rs crates/workloads/src/fft.rs crates/workloads/src/gaussian.rs crates/workloads/src/gramschm.rs crates/workloads/src/hotspot.rs crates/workloads/src/lud.rs crates/workloads/src/mvt.rs crates/workloads/src/nw.rs crates/workloads/src/pathfinder.rs crates/workloads/src/threemm.rs crates/workloads/src/vectoradd.rs

crates/workloads/src/lib.rs:
crates/workloads/src/alexnet.rs:
crates/workloads/src/bicg.rs:
crates/workloads/src/common.rs:
crates/workloads/src/fdtd2d.rs:
crates/workloads/src/fft.rs:
crates/workloads/src/gaussian.rs:
crates/workloads/src/gramschm.rs:
crates/workloads/src/hotspot.rs:
crates/workloads/src/lud.rs:
crates/workloads/src/mvt.rs:
crates/workloads/src/nw.rs:
crates/workloads/src/pathfinder.rs:
crates/workloads/src/threemm.rs:
crates/workloads/src/vectoradd.rs:
