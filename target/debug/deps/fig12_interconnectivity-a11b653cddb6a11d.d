/root/repo/target/debug/deps/fig12_interconnectivity-a11b653cddb6a11d.d: crates/bench/src/bin/fig12_interconnectivity.rs

/root/repo/target/debug/deps/fig12_interconnectivity-a11b653cddb6a11d: crates/bench/src/bin/fig12_interconnectivity.rs

crates/bench/src/bin/fig12_interconnectivity.rs:
