/root/repo/target/debug/deps/bm_simt-b6dc36034588d645.d: crates/simt/src/lib.rs crates/simt/src/config.rs crates/simt/src/des.rs crates/simt/src/stats.rs crates/simt/src/timing.rs

/root/repo/target/debug/deps/libbm_simt-b6dc36034588d645.rmeta: crates/simt/src/lib.rs crates/simt/src/config.rs crates/simt/src/des.rs crates/simt/src/stats.rs crates/simt/src/timing.rs

crates/simt/src/lib.rs:
crates/simt/src/config.rs:
crates/simt/src/des.rs:
crates/simt/src/stats.rs:
crates/simt/src/timing.rs:
