/root/repo/target/debug/deps/fig10_concurrency-e34169a31072f423.d: crates/bench/src/bin/fig10_concurrency.rs

/root/repo/target/debug/deps/libfig10_concurrency-e34169a31072f423.rmeta: crates/bench/src/bin/fig10_concurrency.rs

crates/bench/src/bin/fig10_concurrency.rs:
