/root/repo/target/debug/deps/table3_storage-2b2652fe52d1c2d9.d: crates/bench/src/bin/table3_storage.rs

/root/repo/target/debug/deps/table3_storage-2b2652fe52d1c2d9: crates/bench/src/bin/table3_storage.rs

crates/bench/src/bin/table3_storage.rs:
