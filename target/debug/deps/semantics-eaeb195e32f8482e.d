/root/repo/target/debug/deps/semantics-eaeb195e32f8482e.d: crates/ptx/tests/semantics.rs Cargo.toml

/root/repo/target/debug/deps/libsemantics-eaeb195e32f8482e.rmeta: crates/ptx/tests/semantics.rs Cargo.toml

crates/ptx/tests/semantics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
