/root/repo/target/debug/deps/blockmaestro-b80351fc99009898.d: crates/core/src/lib.rs crates/core/src/compare/mod.rs crates/core/src/compare/models.rs crates/core/src/compare/taskgraph.rs crates/core/src/correctness.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/faults.rs crates/core/src/guard.rs crates/core/src/hw.rs crates/core/src/jit.rs crates/core/src/modes.rs crates/core/src/streams.rs

/root/repo/target/debug/deps/libblockmaestro-b80351fc99009898.rmeta: crates/core/src/lib.rs crates/core/src/compare/mod.rs crates/core/src/compare/models.rs crates/core/src/compare/taskgraph.rs crates/core/src/correctness.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/faults.rs crates/core/src/guard.rs crates/core/src/hw.rs crates/core/src/jit.rs crates/core/src/modes.rs crates/core/src/streams.rs

crates/core/src/lib.rs:
crates/core/src/compare/mod.rs:
crates/core/src/compare/models.rs:
crates/core/src/compare/taskgraph.rs:
crates/core/src/correctness.rs:
crates/core/src/engine.rs:
crates/core/src/error.rs:
crates/core/src/faults.rs:
crates/core/src/guard.rs:
crates/core/src/hw.rs:
crates/core/src/jit.rs:
crates/core/src/modes.rs:
crates/core/src/streams.rs:
