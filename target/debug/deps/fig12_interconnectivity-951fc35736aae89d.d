/root/repo/target/debug/deps/fig12_interconnectivity-951fc35736aae89d.d: crates/bench/src/bin/fig12_interconnectivity.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_interconnectivity-951fc35736aae89d.rmeta: crates/bench/src/bin/fig12_interconnectivity.rs Cargo.toml

crates/bench/src/bin/fig12_interconnectivity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
