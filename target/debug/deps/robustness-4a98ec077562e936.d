/root/repo/target/debug/deps/robustness-4a98ec077562e936.d: tests/robustness.rs

/root/repo/target/debug/deps/librobustness-4a98ec077562e936.rmeta: tests/robustness.rs

tests/robustness.rs:
