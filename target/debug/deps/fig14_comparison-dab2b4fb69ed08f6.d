/root/repo/target/debug/deps/fig14_comparison-dab2b4fb69ed08f6.d: crates/bench/src/bin/fig14_comparison.rs Cargo.toml

/root/repo/target/debug/deps/libfig14_comparison-dab2b4fb69ed08f6.rmeta: crates/bench/src/bin/fig14_comparison.rs Cargo.toml

crates/bench/src/bin/fig14_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
