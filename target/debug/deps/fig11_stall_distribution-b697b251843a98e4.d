/root/repo/target/debug/deps/fig11_stall_distribution-b697b251843a98e4.d: crates/bench/src/bin/fig11_stall_distribution.rs

/root/repo/target/debug/deps/libfig11_stall_distribution-b697b251843a98e4.rmeta: crates/bench/src/bin/fig11_stall_distribution.rs

crates/bench/src/bin/fig11_stall_distribution.rs:
