/root/repo/target/debug/deps/fig13_memory_overhead-7bae8ff39c7fa133.d: crates/bench/src/bin/fig13_memory_overhead.rs

/root/repo/target/debug/deps/fig13_memory_overhead-7bae8ff39c7fa133: crates/bench/src/bin/fig13_memory_overhead.rs

crates/bench/src/bin/fig13_memory_overhead.rs:
