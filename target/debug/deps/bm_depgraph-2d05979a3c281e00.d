/root/repo/target/debug/deps/bm_depgraph-2d05979a3c281e00.d: crates/depgraph/src/lib.rs crates/depgraph/src/build.rs crates/depgraph/src/encoding.rs crates/depgraph/src/graph.rs crates/depgraph/src/interval_index.rs crates/depgraph/src/pattern.rs

/root/repo/target/debug/deps/libbm_depgraph-2d05979a3c281e00.rlib: crates/depgraph/src/lib.rs crates/depgraph/src/build.rs crates/depgraph/src/encoding.rs crates/depgraph/src/graph.rs crates/depgraph/src/interval_index.rs crates/depgraph/src/pattern.rs

/root/repo/target/debug/deps/libbm_depgraph-2d05979a3c281e00.rmeta: crates/depgraph/src/lib.rs crates/depgraph/src/build.rs crates/depgraph/src/encoding.rs crates/depgraph/src/graph.rs crates/depgraph/src/interval_index.rs crates/depgraph/src/pattern.rs

crates/depgraph/src/lib.rs:
crates/depgraph/src/build.rs:
crates/depgraph/src/encoding.rs:
crates/depgraph/src/graph.rs:
crates/depgraph/src/interval_index.rs:
crates/depgraph/src/pattern.rs:
