/root/repo/target/debug/deps/compare_props-4724c7bb2852c443.d: crates/core/tests/compare_props.rs Cargo.toml

/root/repo/target/debug/deps/libcompare_props-4724c7bb2852c443.rmeta: crates/core/tests/compare_props.rs Cargo.toml

crates/core/tests/compare_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
