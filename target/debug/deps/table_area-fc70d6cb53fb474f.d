/root/repo/target/debug/deps/table_area-fc70d6cb53fb474f.d: crates/bench/src/bin/table_area.rs Cargo.toml

/root/repo/target/debug/deps/libtable_area-fc70d6cb53fb474f.rmeta: crates/bench/src/bin/table_area.rs Cargo.toml

crates/bench/src/bin/table_area.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
