/root/repo/target/debug/deps/semantics-fb5b847182788e78.d: crates/ptx/tests/semantics.rs

/root/repo/target/debug/deps/semantics-fb5b847182788e78: crates/ptx/tests/semantics.rs

crates/ptx/tests/semantics.rs:
