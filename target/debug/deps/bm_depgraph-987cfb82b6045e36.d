/root/repo/target/debug/deps/bm_depgraph-987cfb82b6045e36.d: crates/depgraph/src/lib.rs crates/depgraph/src/build.rs crates/depgraph/src/encoding.rs crates/depgraph/src/graph.rs crates/depgraph/src/interval_index.rs crates/depgraph/src/pattern.rs

/root/repo/target/debug/deps/bm_depgraph-987cfb82b6045e36: crates/depgraph/src/lib.rs crates/depgraph/src/build.rs crates/depgraph/src/encoding.rs crates/depgraph/src/graph.rs crates/depgraph/src/interval_index.rs crates/depgraph/src/pattern.rs

crates/depgraph/src/lib.rs:
crates/depgraph/src/build.rs:
crates/depgraph/src/encoding.rs:
crates/depgraph/src/graph.rs:
crates/depgraph/src/interval_index.rs:
crates/depgraph/src/pattern.rs:
