/root/repo/target/debug/deps/random_apps-37f0ca1ad8b752d0.d: tests/random_apps.rs Cargo.toml

/root/repo/target/debug/deps/librandom_apps-37f0ca1ad8b752d0.rmeta: tests/random_apps.rs Cargo.toml

tests/random_apps.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
