/root/repo/target/debug/deps/ext_sensitivity-03dfcf68f3ad8af0.d: crates/bench/src/bin/ext_sensitivity.rs

/root/repo/target/debug/deps/libext_sensitivity-03dfcf68f3ad8af0.rmeta: crates/bench/src/bin/ext_sensitivity.rs

crates/bench/src/bin/ext_sensitivity.rs:
