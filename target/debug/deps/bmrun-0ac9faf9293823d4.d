/root/repo/target/debug/deps/bmrun-0ac9faf9293823d4.d: crates/bench/src/bin/bmrun.rs Cargo.toml

/root/repo/target/debug/deps/libbmrun-0ac9faf9293823d4.rmeta: crates/bench/src/bin/bmrun.rs Cargo.toml

crates/bench/src/bin/bmrun.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
