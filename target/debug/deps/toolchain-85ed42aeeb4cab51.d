/root/repo/target/debug/deps/toolchain-85ed42aeeb4cab51.d: crates/bench/benches/toolchain.rs Cargo.toml

/root/repo/target/debug/deps/libtoolchain-85ed42aeeb4cab51.rmeta: crates/bench/benches/toolchain.rs Cargo.toml

crates/bench/benches/toolchain.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
