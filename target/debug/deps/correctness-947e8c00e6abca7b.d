/root/repo/target/debug/deps/correctness-947e8c00e6abca7b.d: tests/correctness.rs Cargo.toml

/root/repo/target/debug/deps/libcorrectness-947e8c00e6abca7b.rmeta: tests/correctness.rs Cargo.toml

tests/correctness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
