/root/repo/target/debug/deps/bm_bench-efd9504254c2559b.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbm_bench-efd9504254c2559b.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
