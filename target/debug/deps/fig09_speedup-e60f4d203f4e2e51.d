/root/repo/target/debug/deps/fig09_speedup-e60f4d203f4e2e51.d: crates/bench/src/bin/fig09_speedup.rs

/root/repo/target/debug/deps/fig09_speedup-e60f4d203f4e2e51: crates/bench/src/bin/fig09_speedup.rs

crates/bench/src/bin/fig09_speedup.rs:
