/root/repo/target/debug/deps/fig13_memory_overhead-6f6134f31f1e9bee.d: crates/bench/src/bin/fig13_memory_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_memory_overhead-6f6134f31f1e9bee.rmeta: crates/bench/src/bin/fig13_memory_overhead.rs Cargo.toml

crates/bench/src/bin/fig13_memory_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
