/root/repo/target/debug/deps/buffer_sizing-b4f19bb5d5ab17d9.d: tests/buffer_sizing.rs Cargo.toml

/root/repo/target/debug/deps/libbuffer_sizing-b4f19bb5d5ab17d9.rmeta: tests/buffer_sizing.rs Cargo.toml

tests/buffer_sizing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
