/root/repo/target/debug/deps/bmrun-52d7e891a9a19d40.d: crates/bench/src/bin/bmrun.rs Cargo.toml

/root/repo/target/debug/deps/libbmrun-52d7e891a9a19d40.rmeta: crates/bench/src/bin/bmrun.rs Cargo.toml

crates/bench/src/bin/bmrun.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
