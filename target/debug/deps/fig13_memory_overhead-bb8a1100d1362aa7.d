/root/repo/target/debug/deps/fig13_memory_overhead-bb8a1100d1362aa7.d: crates/bench/src/bin/fig13_memory_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_memory_overhead-bb8a1100d1362aa7.rmeta: crates/bench/src/bin/fig13_memory_overhead.rs Cargo.toml

crates/bench/src/bin/fig13_memory_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
