/root/repo/target/debug/deps/fig12_interconnectivity-2266f42b2fd082b7.d: crates/bench/src/bin/fig12_interconnectivity.rs

/root/repo/target/debug/deps/libfig12_interconnectivity-2266f42b2fd082b7.rmeta: crates/bench/src/bin/fig12_interconnectivity.rs

crates/bench/src/bin/fig12_interconnectivity.rs:
