/root/repo/target/debug/deps/semantics-3bc98ea62d418bb1.d: crates/ptx/tests/semantics.rs

/root/repo/target/debug/deps/libsemantics-3bc98ea62d418bb1.rmeta: crates/ptx/tests/semantics.rs

crates/ptx/tests/semantics.rs:
