/root/repo/target/debug/deps/ext_streams-e91d5dee16922a65.d: crates/bench/src/bin/ext_streams.rs

/root/repo/target/debug/deps/libext_streams-e91d5dee16922a65.rmeta: crates/bench/src/bin/ext_streams.rs

crates/bench/src/bin/ext_streams.rs:
