/root/repo/target/debug/deps/bm_ptx-80d747d01f55de10.d: crates/ptx/src/lib.rs crates/ptx/src/absint.rs crates/ptx/src/access.rs crates/ptx/src/builder.rs crates/ptx/src/cfg.rs crates/ptx/src/error.rs crates/ptx/src/interp.rs crates/ptx/src/interval.rs crates/ptx/src/isa.rs crates/ptx/src/kernel.rs crates/ptx/src/lexer.rs crates/ptx/src/mem.rs crates/ptx/src/parser.rs crates/ptx/src/print.rs crates/ptx/src/taint.rs crates/ptx/src/trace.rs

/root/repo/target/debug/deps/libbm_ptx-80d747d01f55de10.rmeta: crates/ptx/src/lib.rs crates/ptx/src/absint.rs crates/ptx/src/access.rs crates/ptx/src/builder.rs crates/ptx/src/cfg.rs crates/ptx/src/error.rs crates/ptx/src/interp.rs crates/ptx/src/interval.rs crates/ptx/src/isa.rs crates/ptx/src/kernel.rs crates/ptx/src/lexer.rs crates/ptx/src/mem.rs crates/ptx/src/parser.rs crates/ptx/src/print.rs crates/ptx/src/taint.rs crates/ptx/src/trace.rs

crates/ptx/src/lib.rs:
crates/ptx/src/absint.rs:
crates/ptx/src/access.rs:
crates/ptx/src/builder.rs:
crates/ptx/src/cfg.rs:
crates/ptx/src/error.rs:
crates/ptx/src/interp.rs:
crates/ptx/src/interval.rs:
crates/ptx/src/isa.rs:
crates/ptx/src/kernel.rs:
crates/ptx/src/lexer.rs:
crates/ptx/src/mem.rs:
crates/ptx/src/parser.rs:
crates/ptx/src/print.rs:
crates/ptx/src/taint.rs:
crates/ptx/src/trace.rs:
