/root/repo/target/debug/deps/behavior-2dbaab9eccb12dbb.d: tests/behavior.rs

/root/repo/target/debug/deps/libbehavior-2dbaab9eccb12dbb.rmeta: tests/behavior.rs

tests/behavior.rs:
