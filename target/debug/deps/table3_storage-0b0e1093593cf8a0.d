/root/repo/target/debug/deps/table3_storage-0b0e1093593cf8a0.d: crates/bench/src/bin/table3_storage.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_storage-0b0e1093593cf8a0.rmeta: crates/bench/src/bin/table3_storage.rs Cargo.toml

crates/bench/src/bin/table3_storage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
