/root/repo/target/debug/deps/bm_ptx-d42317dfe9b1c878.d: crates/ptx/src/lib.rs crates/ptx/src/absint.rs crates/ptx/src/access.rs crates/ptx/src/builder.rs crates/ptx/src/cfg.rs crates/ptx/src/error.rs crates/ptx/src/interp.rs crates/ptx/src/interval.rs crates/ptx/src/isa.rs crates/ptx/src/kernel.rs crates/ptx/src/lexer.rs crates/ptx/src/mem.rs crates/ptx/src/parser.rs crates/ptx/src/print.rs crates/ptx/src/taint.rs crates/ptx/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libbm_ptx-d42317dfe9b1c878.rmeta: crates/ptx/src/lib.rs crates/ptx/src/absint.rs crates/ptx/src/access.rs crates/ptx/src/builder.rs crates/ptx/src/cfg.rs crates/ptx/src/error.rs crates/ptx/src/interp.rs crates/ptx/src/interval.rs crates/ptx/src/isa.rs crates/ptx/src/kernel.rs crates/ptx/src/lexer.rs crates/ptx/src/mem.rs crates/ptx/src/parser.rs crates/ptx/src/print.rs crates/ptx/src/taint.rs crates/ptx/src/trace.rs Cargo.toml

crates/ptx/src/lib.rs:
crates/ptx/src/absint.rs:
crates/ptx/src/access.rs:
crates/ptx/src/builder.rs:
crates/ptx/src/cfg.rs:
crates/ptx/src/error.rs:
crates/ptx/src/interp.rs:
crates/ptx/src/interval.rs:
crates/ptx/src/isa.rs:
crates/ptx/src/kernel.rs:
crates/ptx/src/lexer.rs:
crates/ptx/src/mem.rs:
crates/ptx/src/parser.rs:
crates/ptx/src/print.rs:
crates/ptx/src/taint.rs:
crates/ptx/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
