/root/repo/target/debug/deps/random_apps-2145ea516c35c3e3.d: tests/random_apps.rs

/root/repo/target/debug/deps/random_apps-2145ea516c35c3e3: tests/random_apps.rs

tests/random_apps.rs:
