/root/repo/target/debug/deps/blockmaestro_suite-442ac3ae9be7bd9c.d: src/lib.rs

/root/repo/target/debug/deps/libblockmaestro_suite-442ac3ae9be7bd9c.rlib: src/lib.rs

/root/repo/target/debug/deps/libblockmaestro_suite-442ac3ae9be7bd9c.rmeta: src/lib.rs

src/lib.rs:
