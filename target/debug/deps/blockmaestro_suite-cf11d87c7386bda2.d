/root/repo/target/debug/deps/blockmaestro_suite-cf11d87c7386bda2.d: src/lib.rs

/root/repo/target/debug/deps/libblockmaestro_suite-cf11d87c7386bda2.rmeta: src/lib.rs

src/lib.rs:
