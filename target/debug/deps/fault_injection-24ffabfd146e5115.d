/root/repo/target/debug/deps/fault_injection-24ffabfd146e5115.d: tests/fault_injection.rs

/root/repo/target/debug/deps/libfault_injection-24ffabfd146e5115.rmeta: tests/fault_injection.rs

tests/fault_injection.rs:
