/root/repo/target/debug/deps/substrate_props-8b250c4faf38f54c.d: crates/simt/tests/substrate_props.rs

/root/repo/target/debug/deps/libsubstrate_props-8b250c4faf38f54c.rmeta: crates/simt/tests/substrate_props.rs

crates/simt/tests/substrate_props.rs:
