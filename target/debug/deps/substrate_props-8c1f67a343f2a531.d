/root/repo/target/debug/deps/substrate_props-8c1f67a343f2a531.d: crates/simt/tests/substrate_props.rs Cargo.toml

/root/repo/target/debug/deps/libsubstrate_props-8c1f67a343f2a531.rmeta: crates/simt/tests/substrate_props.rs Cargo.toml

crates/simt/tests/substrate_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
