/root/repo/target/debug/deps/bm_cmdq-d828f05b61a8dac6.d: crates/cmdq/src/lib.rs crates/cmdq/src/api.rs crates/cmdq/src/deps.rs crates/cmdq/src/error.rs crates/cmdq/src/reorder.rs

/root/repo/target/debug/deps/libbm_cmdq-d828f05b61a8dac6.rmeta: crates/cmdq/src/lib.rs crates/cmdq/src/api.rs crates/cmdq/src/deps.rs crates/cmdq/src/error.rs crates/cmdq/src/reorder.rs

crates/cmdq/src/lib.rs:
crates/cmdq/src/api.rs:
crates/cmdq/src/deps.rs:
crates/cmdq/src/error.rs:
crates/cmdq/src/reorder.rs:
