/root/repo/target/debug/deps/bm_testkit-a2e0929fc76e5dfc.d: crates/testkit/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbm_testkit-a2e0929fc76e5dfc.rmeta: crates/testkit/src/lib.rs Cargo.toml

crates/testkit/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
