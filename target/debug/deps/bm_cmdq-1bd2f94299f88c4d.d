/root/repo/target/debug/deps/bm_cmdq-1bd2f94299f88c4d.d: crates/cmdq/src/lib.rs crates/cmdq/src/api.rs crates/cmdq/src/deps.rs crates/cmdq/src/error.rs crates/cmdq/src/reorder.rs Cargo.toml

/root/repo/target/debug/deps/libbm_cmdq-1bd2f94299f88c4d.rmeta: crates/cmdq/src/lib.rs crates/cmdq/src/api.rs crates/cmdq/src/deps.rs crates/cmdq/src/error.rs crates/cmdq/src/reorder.rs Cargo.toml

crates/cmdq/src/lib.rs:
crates/cmdq/src/api.rs:
crates/cmdq/src/deps.rs:
crates/cmdq/src/error.rs:
crates/cmdq/src/reorder.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
