/root/repo/target/debug/deps/fig14_comparison-1d85f4490976d05c.d: crates/bench/src/bin/fig14_comparison.rs

/root/repo/target/debug/deps/fig14_comparison-1d85f4490976d05c: crates/bench/src/bin/fig14_comparison.rs

crates/bench/src/bin/fig14_comparison.rs:
