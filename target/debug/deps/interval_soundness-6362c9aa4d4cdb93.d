/root/repo/target/debug/deps/interval_soundness-6362c9aa4d4cdb93.d: crates/ptx/tests/interval_soundness.rs Cargo.toml

/root/repo/target/debug/deps/libinterval_soundness-6362c9aa4d4cdb93.rmeta: crates/ptx/tests/interval_soundness.rs Cargo.toml

crates/ptx/tests/interval_soundness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
