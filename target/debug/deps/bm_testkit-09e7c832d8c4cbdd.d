/root/repo/target/debug/deps/bm_testkit-09e7c832d8c4cbdd.d: crates/testkit/src/lib.rs

/root/repo/target/debug/deps/bm_testkit-09e7c832d8c4cbdd: crates/testkit/src/lib.rs

crates/testkit/src/lib.rs:
