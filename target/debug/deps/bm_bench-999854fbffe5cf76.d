/root/repo/target/debug/deps/bm_bench-999854fbffe5cf76.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbm_bench-999854fbffe5cf76.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbm_bench-999854fbffe5cf76.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
