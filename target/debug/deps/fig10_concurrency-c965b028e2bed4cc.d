/root/repo/target/debug/deps/fig10_concurrency-c965b028e2bed4cc.d: crates/bench/src/bin/fig10_concurrency.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_concurrency-c965b028e2bed4cc.rmeta: crates/bench/src/bin/fig10_concurrency.rs Cargo.toml

crates/bench/src/bin/fig10_concurrency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
