/root/repo/target/debug/deps/table_area-fba043e71963fbd6.d: crates/bench/src/bin/table_area.rs

/root/repo/target/debug/deps/libtable_area-fba043e71963fbd6.rmeta: crates/bench/src/bin/table_area.rs

crates/bench/src/bin/table_area.rs:
