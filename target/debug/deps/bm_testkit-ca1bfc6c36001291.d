/root/repo/target/debug/deps/bm_testkit-ca1bfc6c36001291.d: crates/testkit/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbm_testkit-ca1bfc6c36001291.rmeta: crates/testkit/src/lib.rs Cargo.toml

crates/testkit/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
