/root/repo/target/debug/deps/fig6_walkthrough-a0c7532c8ae87f8d.d: crates/core/tests/fig6_walkthrough.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_walkthrough-a0c7532c8ae87f8d.rmeta: crates/core/tests/fig6_walkthrough.rs Cargo.toml

crates/core/tests/fig6_walkthrough.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
