/root/repo/target/debug/deps/substrate_props-466d5ee39b9fabe2.d: crates/simt/tests/substrate_props.rs

/root/repo/target/debug/deps/substrate_props-466d5ee39b9fabe2: crates/simt/tests/substrate_props.rs

crates/simt/tests/substrate_props.rs:
