/root/repo/target/debug/deps/bm_testkit-81c6f295887000ae.d: crates/testkit/src/lib.rs

/root/repo/target/debug/deps/libbm_testkit-81c6f295887000ae.rmeta: crates/testkit/src/lib.rs

crates/testkit/src/lib.rs:
