/root/repo/target/debug/deps/table3_storage-1a6ed4faa7ab3c7a.d: crates/bench/src/bin/table3_storage.rs

/root/repo/target/debug/deps/libtable3_storage-1a6ed4faa7ab3c7a.rmeta: crates/bench/src/bin/table3_storage.rs

crates/bench/src/bin/table3_storage.rs:
