/root/repo/target/debug/deps/ext_sensitivity-0b561d2e2ac5e059.d: crates/bench/src/bin/ext_sensitivity.rs Cargo.toml

/root/repo/target/debug/deps/libext_sensitivity-0b561d2e2ac5e059.rmeta: crates/bench/src/bin/ext_sensitivity.rs Cargo.toml

crates/bench/src/bin/ext_sensitivity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
