/root/repo/target/debug/deps/blockmaestro_suite-73059fd182c9931c.d: src/lib.rs

/root/repo/target/debug/deps/blockmaestro_suite-73059fd182c9931c: src/lib.rs

src/lib.rs:
