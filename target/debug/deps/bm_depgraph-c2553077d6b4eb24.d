/root/repo/target/debug/deps/bm_depgraph-c2553077d6b4eb24.d: crates/depgraph/src/lib.rs crates/depgraph/src/build.rs crates/depgraph/src/encoding.rs crates/depgraph/src/graph.rs crates/depgraph/src/interval_index.rs crates/depgraph/src/pattern.rs

/root/repo/target/debug/deps/libbm_depgraph-c2553077d6b4eb24.rmeta: crates/depgraph/src/lib.rs crates/depgraph/src/build.rs crates/depgraph/src/encoding.rs crates/depgraph/src/graph.rs crates/depgraph/src/interval_index.rs crates/depgraph/src/pattern.rs

crates/depgraph/src/lib.rs:
crates/depgraph/src/build.rs:
crates/depgraph/src/encoding.rs:
crates/depgraph/src/graph.rs:
crates/depgraph/src/interval_index.rs:
crates/depgraph/src/pattern.rs:
