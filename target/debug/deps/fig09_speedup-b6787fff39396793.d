/root/repo/target/debug/deps/fig09_speedup-b6787fff39396793.d: crates/bench/src/bin/fig09_speedup.rs

/root/repo/target/debug/deps/libfig09_speedup-b6787fff39396793.rmeta: crates/bench/src/bin/fig09_speedup.rs

crates/bench/src/bin/fig09_speedup.rs:
