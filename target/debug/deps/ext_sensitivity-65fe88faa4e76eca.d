/root/repo/target/debug/deps/ext_sensitivity-65fe88faa4e76eca.d: crates/bench/src/bin/ext_sensitivity.rs Cargo.toml

/root/repo/target/debug/deps/libext_sensitivity-65fe88faa4e76eca.rmeta: crates/bench/src/bin/ext_sensitivity.rs Cargo.toml

crates/bench/src/bin/ext_sensitivity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
