/root/repo/target/debug/deps/fig11_stall_distribution-4991fa9fd2ce823d.d: crates/bench/src/bin/fig11_stall_distribution.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_stall_distribution-4991fa9fd2ce823d.rmeta: crates/bench/src/bin/fig11_stall_distribution.rs Cargo.toml

crates/bench/src/bin/fig11_stall_distribution.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
