/root/repo/target/debug/deps/fig11_stall_distribution-e746efae3ae9f076.d: crates/bench/src/bin/fig11_stall_distribution.rs

/root/repo/target/debug/deps/fig11_stall_distribution-e746efae3ae9f076: crates/bench/src/bin/fig11_stall_distribution.rs

crates/bench/src/bin/fig11_stall_distribution.rs:
