/root/repo/target/debug/deps/interval_soundness-25ee2af5bc8acfcb.d: crates/ptx/tests/interval_soundness.rs

/root/repo/target/debug/deps/libinterval_soundness-25ee2af5bc8acfcb.rmeta: crates/ptx/tests/interval_soundness.rs

crates/ptx/tests/interval_soundness.rs:
