/root/repo/target/debug/deps/bm_testkit-e60e65ab07dd203d.d: crates/testkit/src/lib.rs

/root/repo/target/debug/deps/libbm_testkit-e60e65ab07dd203d.rlib: crates/testkit/src/lib.rs

/root/repo/target/debug/deps/libbm_testkit-e60e65ab07dd203d.rmeta: crates/testkit/src/lib.rs

crates/testkit/src/lib.rs:
