/root/repo/target/debug/deps/bm_simt-48ae5084d96c54b7.d: crates/simt/src/lib.rs crates/simt/src/config.rs crates/simt/src/des.rs crates/simt/src/stats.rs crates/simt/src/timing.rs

/root/repo/target/debug/deps/libbm_simt-48ae5084d96c54b7.rmeta: crates/simt/src/lib.rs crates/simt/src/config.rs crates/simt/src/des.rs crates/simt/src/stats.rs crates/simt/src/timing.rs

crates/simt/src/lib.rs:
crates/simt/src/config.rs:
crates/simt/src/des.rs:
crates/simt/src/stats.rs:
crates/simt/src/timing.rs:
