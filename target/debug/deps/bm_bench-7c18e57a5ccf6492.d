/root/repo/target/debug/deps/bm_bench-7c18e57a5ccf6492.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbm_bench-7c18e57a5ccf6492.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
