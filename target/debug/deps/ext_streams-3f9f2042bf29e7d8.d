/root/repo/target/debug/deps/ext_streams-3f9f2042bf29e7d8.d: crates/bench/src/bin/ext_streams.rs

/root/repo/target/debug/deps/ext_streams-3f9f2042bf29e7d8: crates/bench/src/bin/ext_streams.rs

crates/bench/src/bin/ext_streams.rs:
