/root/repo/target/debug/deps/patterns-6119c6fffd9585b5.d: tests/patterns.rs

/root/repo/target/debug/deps/libpatterns-6119c6fffd9585b5.rmeta: tests/patterns.rs

tests/patterns.rs:
