/root/repo/target/debug/deps/bm_bench-b3dc8d6ec00e6912.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbm_bench-b3dc8d6ec00e6912.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
