/root/repo/target/debug/deps/table2_benchmarks-be1b9741172b9135.d: crates/bench/src/bin/table2_benchmarks.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_benchmarks-be1b9741172b9135.rmeta: crates/bench/src/bin/table2_benchmarks.rs Cargo.toml

crates/bench/src/bin/table2_benchmarks.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
