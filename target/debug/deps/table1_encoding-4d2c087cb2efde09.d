/root/repo/target/debug/deps/table1_encoding-4d2c087cb2efde09.d: crates/bench/src/bin/table1_encoding.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_encoding-4d2c087cb2efde09.rmeta: crates/bench/src/bin/table1_encoding.rs Cargo.toml

crates/bench/src/bin/table1_encoding.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
