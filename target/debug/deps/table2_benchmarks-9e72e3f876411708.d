/root/repo/target/debug/deps/table2_benchmarks-9e72e3f876411708.d: crates/bench/src/bin/table2_benchmarks.rs

/root/repo/target/debug/deps/table2_benchmarks-9e72e3f876411708: crates/bench/src/bin/table2_benchmarks.rs

crates/bench/src/bin/table2_benchmarks.rs:
