/root/repo/target/debug/deps/blockmaestro_suite-c32cf52b289bbe7a.d: src/lib.rs

/root/repo/target/debug/deps/libblockmaestro_suite-c32cf52b289bbe7a.rmeta: src/lib.rs

src/lib.rs:
