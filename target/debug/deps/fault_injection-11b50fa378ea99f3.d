/root/repo/target/debug/deps/fault_injection-11b50fa378ea99f3.d: tests/fault_injection.rs

/root/repo/target/debug/deps/fault_injection-11b50fa378ea99f3: tests/fault_injection.rs

tests/fault_injection.rs:
