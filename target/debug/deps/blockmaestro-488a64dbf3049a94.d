/root/repo/target/debug/deps/blockmaestro-488a64dbf3049a94.d: crates/core/src/lib.rs crates/core/src/compare/mod.rs crates/core/src/compare/models.rs crates/core/src/compare/taskgraph.rs crates/core/src/correctness.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/faults.rs crates/core/src/guard.rs crates/core/src/hw.rs crates/core/src/jit.rs crates/core/src/modes.rs crates/core/src/streams.rs Cargo.toml

/root/repo/target/debug/deps/libblockmaestro-488a64dbf3049a94.rmeta: crates/core/src/lib.rs crates/core/src/compare/mod.rs crates/core/src/compare/models.rs crates/core/src/compare/taskgraph.rs crates/core/src/correctness.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/faults.rs crates/core/src/guard.rs crates/core/src/hw.rs crates/core/src/jit.rs crates/core/src/modes.rs crates/core/src/streams.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/compare/mod.rs:
crates/core/src/compare/models.rs:
crates/core/src/compare/taskgraph.rs:
crates/core/src/correctness.rs:
crates/core/src/engine.rs:
crates/core/src/error.rs:
crates/core/src/faults.rs:
crates/core/src/guard.rs:
crates/core/src/hw.rs:
crates/core/src/jit.rs:
crates/core/src/modes.rs:
crates/core/src/streams.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
