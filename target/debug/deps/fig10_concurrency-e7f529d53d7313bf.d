/root/repo/target/debug/deps/fig10_concurrency-e7f529d53d7313bf.d: crates/bench/src/bin/fig10_concurrency.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_concurrency-e7f529d53d7313bf.rmeta: crates/bench/src/bin/fig10_concurrency.rs Cargo.toml

crates/bench/src/bin/fig10_concurrency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
