/root/repo/target/debug/deps/behavior-f74f5569b98d789f.d: tests/behavior.rs Cargo.toml

/root/repo/target/debug/deps/libbehavior-f74f5569b98d789f.rmeta: tests/behavior.rs Cargo.toml

tests/behavior.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
