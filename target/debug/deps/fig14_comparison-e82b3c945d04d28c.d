/root/repo/target/debug/deps/fig14_comparison-e82b3c945d04d28c.d: crates/bench/src/bin/fig14_comparison.rs Cargo.toml

/root/repo/target/debug/deps/libfig14_comparison-e82b3c945d04d28c.rmeta: crates/bench/src/bin/fig14_comparison.rs Cargo.toml

crates/bench/src/bin/fig14_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
