/root/repo/target/debug/deps/bm_cmdq-db899a418227a70b.d: crates/cmdq/src/lib.rs crates/cmdq/src/api.rs crates/cmdq/src/deps.rs crates/cmdq/src/error.rs crates/cmdq/src/reorder.rs

/root/repo/target/debug/deps/libbm_cmdq-db899a418227a70b.rmeta: crates/cmdq/src/lib.rs crates/cmdq/src/api.rs crates/cmdq/src/deps.rs crates/cmdq/src/error.rs crates/cmdq/src/reorder.rs

crates/cmdq/src/lib.rs:
crates/cmdq/src/api.rs:
crates/cmdq/src/deps.rs:
crates/cmdq/src/error.rs:
crates/cmdq/src/reorder.rs:
