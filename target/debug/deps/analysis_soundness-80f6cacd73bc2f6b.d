/root/repo/target/debug/deps/analysis_soundness-80f6cacd73bc2f6b.d: tests/analysis_soundness.rs

/root/repo/target/debug/deps/analysis_soundness-80f6cacd73bc2f6b: tests/analysis_soundness.rs

tests/analysis_soundness.rs:
