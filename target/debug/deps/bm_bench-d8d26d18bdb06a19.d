/root/repo/target/debug/deps/bm_bench-d8d26d18bdb06a19.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbm_bench-d8d26d18bdb06a19.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
