/root/repo/target/debug/deps/compare_props-bd7e57a60fed511c.d: crates/core/tests/compare_props.rs

/root/repo/target/debug/deps/compare_props-bd7e57a60fed511c: crates/core/tests/compare_props.rs

crates/core/tests/compare_props.rs:
