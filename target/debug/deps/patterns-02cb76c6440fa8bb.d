/root/repo/target/debug/deps/patterns-02cb76c6440fa8bb.d: tests/patterns.rs

/root/repo/target/debug/deps/patterns-02cb76c6440fa8bb: tests/patterns.rs

tests/patterns.rs:
