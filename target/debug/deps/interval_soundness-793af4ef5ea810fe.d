/root/repo/target/debug/deps/interval_soundness-793af4ef5ea810fe.d: crates/ptx/tests/interval_soundness.rs

/root/repo/target/debug/deps/interval_soundness-793af4ef5ea810fe: crates/ptx/tests/interval_soundness.rs

crates/ptx/tests/interval_soundness.rs:
