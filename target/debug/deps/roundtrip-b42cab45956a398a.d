/root/repo/target/debug/deps/roundtrip-b42cab45956a398a.d: crates/ptx/tests/roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libroundtrip-b42cab45956a398a.rmeta: crates/ptx/tests/roundtrip.rs Cargo.toml

crates/ptx/tests/roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
