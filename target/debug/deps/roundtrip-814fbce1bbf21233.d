/root/repo/target/debug/deps/roundtrip-814fbce1bbf21233.d: crates/ptx/tests/roundtrip.rs

/root/repo/target/debug/deps/libroundtrip-814fbce1bbf21233.rmeta: crates/ptx/tests/roundtrip.rs

crates/ptx/tests/roundtrip.rs:
