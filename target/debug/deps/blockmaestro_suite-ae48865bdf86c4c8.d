/root/repo/target/debug/deps/blockmaestro_suite-ae48865bdf86c4c8.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libblockmaestro_suite-ae48865bdf86c4c8.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
