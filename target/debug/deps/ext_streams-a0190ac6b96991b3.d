/root/repo/target/debug/deps/ext_streams-a0190ac6b96991b3.d: crates/bench/src/bin/ext_streams.rs Cargo.toml

/root/repo/target/debug/deps/libext_streams-a0190ac6b96991b3.rmeta: crates/bench/src/bin/ext_streams.rs Cargo.toml

crates/bench/src/bin/ext_streams.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
