/root/repo/target/debug/deps/bm_depgraph-7c1418d621d2ceb1.d: crates/depgraph/src/lib.rs crates/depgraph/src/build.rs crates/depgraph/src/encoding.rs crates/depgraph/src/graph.rs crates/depgraph/src/interval_index.rs crates/depgraph/src/pattern.rs

/root/repo/target/debug/deps/libbm_depgraph-7c1418d621d2ceb1.rmeta: crates/depgraph/src/lib.rs crates/depgraph/src/build.rs crates/depgraph/src/encoding.rs crates/depgraph/src/graph.rs crates/depgraph/src/interval_index.rs crates/depgraph/src/pattern.rs

crates/depgraph/src/lib.rs:
crates/depgraph/src/build.rs:
crates/depgraph/src/encoding.rs:
crates/depgraph/src/graph.rs:
crates/depgraph/src/interval_index.rs:
crates/depgraph/src/pattern.rs:
