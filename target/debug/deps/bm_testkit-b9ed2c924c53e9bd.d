/root/repo/target/debug/deps/bm_testkit-b9ed2c924c53e9bd.d: crates/testkit/src/lib.rs

/root/repo/target/debug/deps/libbm_testkit-b9ed2c924c53e9bd.rmeta: crates/testkit/src/lib.rs

crates/testkit/src/lib.rs:
