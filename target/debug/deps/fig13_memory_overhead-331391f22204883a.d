/root/repo/target/debug/deps/fig13_memory_overhead-331391f22204883a.d: crates/bench/src/bin/fig13_memory_overhead.rs

/root/repo/target/debug/deps/libfig13_memory_overhead-331391f22204883a.rmeta: crates/bench/src/bin/fig13_memory_overhead.rs

crates/bench/src/bin/fig13_memory_overhead.rs:
