/root/repo/target/debug/deps/robustness-6febd4c07dc923b3.d: tests/robustness.rs

/root/repo/target/debug/deps/robustness-6febd4c07dc923b3: tests/robustness.rs

tests/robustness.rs:
