/root/repo/target/debug/deps/patterns-ea7ea7469a33de3c.d: tests/patterns.rs Cargo.toml

/root/repo/target/debug/deps/libpatterns-ea7ea7469a33de3c.rmeta: tests/patterns.rs Cargo.toml

tests/patterns.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
