/root/repo/target/debug/deps/compare_props-6827ec2bf865a655.d: crates/core/tests/compare_props.rs

/root/repo/target/debug/deps/libcompare_props-6827ec2bf865a655.rmeta: crates/core/tests/compare_props.rs

crates/core/tests/compare_props.rs:
