/root/repo/target/debug/deps/analysis_soundness-6847109c512e7924.d: tests/analysis_soundness.rs Cargo.toml

/root/repo/target/debug/deps/libanalysis_soundness-6847109c512e7924.rmeta: tests/analysis_soundness.rs Cargo.toml

tests/analysis_soundness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
