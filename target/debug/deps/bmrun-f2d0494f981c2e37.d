/root/repo/target/debug/deps/bmrun-f2d0494f981c2e37.d: crates/bench/src/bin/bmrun.rs

/root/repo/target/debug/deps/libbmrun-f2d0494f981c2e37.rmeta: crates/bench/src/bin/bmrun.rs

crates/bench/src/bin/bmrun.rs:
