/root/repo/target/debug/deps/bmrun-12c152f7d69da8af.d: crates/bench/src/bin/bmrun.rs

/root/repo/target/debug/deps/bmrun-12c152f7d69da8af: crates/bench/src/bin/bmrun.rs

crates/bench/src/bin/bmrun.rs:
