/root/repo/target/debug/deps/bm_bench-2470ceeee1c977ea.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/bm_bench-2470ceeee1c977ea: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
