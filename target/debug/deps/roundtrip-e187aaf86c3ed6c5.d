/root/repo/target/debug/deps/roundtrip-e187aaf86c3ed6c5.d: crates/ptx/tests/roundtrip.rs

/root/repo/target/debug/deps/roundtrip-e187aaf86c3ed6c5: crates/ptx/tests/roundtrip.rs

crates/ptx/tests/roundtrip.rs:
