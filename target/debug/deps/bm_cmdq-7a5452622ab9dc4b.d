/root/repo/target/debug/deps/bm_cmdq-7a5452622ab9dc4b.d: crates/cmdq/src/lib.rs crates/cmdq/src/api.rs crates/cmdq/src/deps.rs crates/cmdq/src/error.rs crates/cmdq/src/reorder.rs

/root/repo/target/debug/deps/bm_cmdq-7a5452622ab9dc4b: crates/cmdq/src/lib.rs crates/cmdq/src/api.rs crates/cmdq/src/deps.rs crates/cmdq/src/error.rs crates/cmdq/src/reorder.rs

crates/cmdq/src/lib.rs:
crates/cmdq/src/api.rs:
crates/cmdq/src/deps.rs:
crates/cmdq/src/error.rs:
crates/cmdq/src/reorder.rs:
