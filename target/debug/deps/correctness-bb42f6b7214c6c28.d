/root/repo/target/debug/deps/correctness-bb42f6b7214c6c28.d: tests/correctness.rs

/root/repo/target/debug/deps/libcorrectness-bb42f6b7214c6c28.rmeta: tests/correctness.rs

tests/correctness.rs:
