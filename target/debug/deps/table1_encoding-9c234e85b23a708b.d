/root/repo/target/debug/deps/table1_encoding-9c234e85b23a708b.d: crates/bench/src/bin/table1_encoding.rs

/root/repo/target/debug/deps/libtable1_encoding-9c234e85b23a708b.rmeta: crates/bench/src/bin/table1_encoding.rs

crates/bench/src/bin/table1_encoding.rs:
