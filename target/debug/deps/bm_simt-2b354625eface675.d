/root/repo/target/debug/deps/bm_simt-2b354625eface675.d: crates/simt/src/lib.rs crates/simt/src/config.rs crates/simt/src/des.rs crates/simt/src/stats.rs crates/simt/src/timing.rs

/root/repo/target/debug/deps/bm_simt-2b354625eface675: crates/simt/src/lib.rs crates/simt/src/config.rs crates/simt/src/des.rs crates/simt/src/stats.rs crates/simt/src/timing.rs

crates/simt/src/lib.rs:
crates/simt/src/config.rs:
crates/simt/src/des.rs:
crates/simt/src/stats.rs:
crates/simt/src/timing.rs:
