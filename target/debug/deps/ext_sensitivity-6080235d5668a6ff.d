/root/repo/target/debug/deps/ext_sensitivity-6080235d5668a6ff.d: crates/bench/src/bin/ext_sensitivity.rs

/root/repo/target/debug/deps/ext_sensitivity-6080235d5668a6ff: crates/bench/src/bin/ext_sensitivity.rs

crates/bench/src/bin/ext_sensitivity.rs:
