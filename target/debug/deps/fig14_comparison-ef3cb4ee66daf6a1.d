/root/repo/target/debug/deps/fig14_comparison-ef3cb4ee66daf6a1.d: crates/bench/src/bin/fig14_comparison.rs

/root/repo/target/debug/deps/libfig14_comparison-ef3cb4ee66daf6a1.rmeta: crates/bench/src/bin/fig14_comparison.rs

crates/bench/src/bin/fig14_comparison.rs:
