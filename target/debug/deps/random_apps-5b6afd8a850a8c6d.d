/root/repo/target/debug/deps/random_apps-5b6afd8a850a8c6d.d: tests/random_apps.rs

/root/repo/target/debug/deps/librandom_apps-5b6afd8a850a8c6d.rmeta: tests/random_apps.rs

tests/random_apps.rs:
