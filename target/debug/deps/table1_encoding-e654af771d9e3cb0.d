/root/repo/target/debug/deps/table1_encoding-e654af771d9e3cb0.d: crates/bench/src/bin/table1_encoding.rs

/root/repo/target/debug/deps/table1_encoding-e654af771d9e3cb0: crates/bench/src/bin/table1_encoding.rs

crates/bench/src/bin/table1_encoding.rs:
