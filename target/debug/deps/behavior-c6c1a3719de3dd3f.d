/root/repo/target/debug/deps/behavior-c6c1a3719de3dd3f.d: tests/behavior.rs

/root/repo/target/debug/deps/behavior-c6c1a3719de3dd3f: tests/behavior.rs

tests/behavior.rs:
