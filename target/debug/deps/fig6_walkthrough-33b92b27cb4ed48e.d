/root/repo/target/debug/deps/fig6_walkthrough-33b92b27cb4ed48e.d: crates/core/tests/fig6_walkthrough.rs

/root/repo/target/debug/deps/fig6_walkthrough-33b92b27cb4ed48e: crates/core/tests/fig6_walkthrough.rs

crates/core/tests/fig6_walkthrough.rs:
