/root/repo/target/debug/deps/analysis_soundness-02db86052fcc2219.d: tests/analysis_soundness.rs

/root/repo/target/debug/deps/libanalysis_soundness-02db86052fcc2219.rmeta: tests/analysis_soundness.rs

tests/analysis_soundness.rs:
