/root/repo/target/debug/deps/fig10_concurrency-add1b6cf1463f8cd.d: crates/bench/src/bin/fig10_concurrency.rs

/root/repo/target/debug/deps/fig10_concurrency-add1b6cf1463f8cd: crates/bench/src/bin/fig10_concurrency.rs

crates/bench/src/bin/fig10_concurrency.rs:
