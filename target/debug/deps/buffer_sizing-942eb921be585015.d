/root/repo/target/debug/deps/buffer_sizing-942eb921be585015.d: tests/buffer_sizing.rs

/root/repo/target/debug/deps/libbuffer_sizing-942eb921be585015.rmeta: tests/buffer_sizing.rs

tests/buffer_sizing.rs:
