/root/repo/target/debug/deps/table_area-e60cd0f28ff4afec.d: crates/bench/src/bin/table_area.rs

/root/repo/target/debug/deps/table_area-e60cd0f28ff4afec: crates/bench/src/bin/table_area.rs

crates/bench/src/bin/table_area.rs:
