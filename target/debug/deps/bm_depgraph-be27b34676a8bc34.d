/root/repo/target/debug/deps/bm_depgraph-be27b34676a8bc34.d: crates/depgraph/src/lib.rs crates/depgraph/src/build.rs crates/depgraph/src/encoding.rs crates/depgraph/src/graph.rs crates/depgraph/src/interval_index.rs crates/depgraph/src/pattern.rs Cargo.toml

/root/repo/target/debug/deps/libbm_depgraph-be27b34676a8bc34.rmeta: crates/depgraph/src/lib.rs crates/depgraph/src/build.rs crates/depgraph/src/encoding.rs crates/depgraph/src/graph.rs crates/depgraph/src/interval_index.rs crates/depgraph/src/pattern.rs Cargo.toml

crates/depgraph/src/lib.rs:
crates/depgraph/src/build.rs:
crates/depgraph/src/encoding.rs:
crates/depgraph/src/graph.rs:
crates/depgraph/src/interval_index.rs:
crates/depgraph/src/pattern.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
