/root/repo/target/release/examples/fault_tolerance-9b14390d34c695f3.d: examples/fault_tolerance.rs

/root/repo/target/release/examples/fault_tolerance-9b14390d34c695f3: examples/fault_tolerance.rs

examples/fault_tolerance.rs:
