/root/repo/target/release/examples/_probe-3acce42569d63bf3.d: examples/_probe.rs

/root/repo/target/release/examples/_probe-3acce42569d63bf3: examples/_probe.rs

examples/_probe.rs:
