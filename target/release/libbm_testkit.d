/root/repo/target/release/libbm_testkit.rlib: /root/repo/crates/testkit/src/lib.rs
