/root/repo/target/release/deps/fig13_memory_overhead-36d4def4c926f1de.d: crates/bench/src/bin/fig13_memory_overhead.rs

/root/repo/target/release/deps/fig13_memory_overhead-36d4def4c926f1de: crates/bench/src/bin/fig13_memory_overhead.rs

crates/bench/src/bin/fig13_memory_overhead.rs:
