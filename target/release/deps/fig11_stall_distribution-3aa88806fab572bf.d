/root/repo/target/release/deps/fig11_stall_distribution-3aa88806fab572bf.d: crates/bench/src/bin/fig11_stall_distribution.rs

/root/repo/target/release/deps/fig11_stall_distribution-3aa88806fab572bf: crates/bench/src/bin/fig11_stall_distribution.rs

crates/bench/src/bin/fig11_stall_distribution.rs:
