/root/repo/target/release/deps/compare_props-fd12a6bd2ee390ae.d: crates/core/tests/compare_props.rs

/root/repo/target/release/deps/compare_props-fd12a6bd2ee390ae: crates/core/tests/compare_props.rs

crates/core/tests/compare_props.rs:
