/root/repo/target/release/deps/table2_benchmarks-6151b97d40d4d8cf.d: crates/bench/src/bin/table2_benchmarks.rs

/root/repo/target/release/deps/table2_benchmarks-6151b97d40d4d8cf: crates/bench/src/bin/table2_benchmarks.rs

crates/bench/src/bin/table2_benchmarks.rs:
