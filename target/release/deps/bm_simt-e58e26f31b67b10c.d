/root/repo/target/release/deps/bm_simt-e58e26f31b67b10c.d: crates/simt/src/lib.rs crates/simt/src/config.rs crates/simt/src/des.rs crates/simt/src/stats.rs crates/simt/src/timing.rs

/root/repo/target/release/deps/libbm_simt-e58e26f31b67b10c.rlib: crates/simt/src/lib.rs crates/simt/src/config.rs crates/simt/src/des.rs crates/simt/src/stats.rs crates/simt/src/timing.rs

/root/repo/target/release/deps/libbm_simt-e58e26f31b67b10c.rmeta: crates/simt/src/lib.rs crates/simt/src/config.rs crates/simt/src/des.rs crates/simt/src/stats.rs crates/simt/src/timing.rs

crates/simt/src/lib.rs:
crates/simt/src/config.rs:
crates/simt/src/des.rs:
crates/simt/src/stats.rs:
crates/simt/src/timing.rs:
