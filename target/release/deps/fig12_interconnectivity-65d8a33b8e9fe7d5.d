/root/repo/target/release/deps/fig12_interconnectivity-65d8a33b8e9fe7d5.d: crates/bench/src/bin/fig12_interconnectivity.rs

/root/repo/target/release/deps/fig12_interconnectivity-65d8a33b8e9fe7d5: crates/bench/src/bin/fig12_interconnectivity.rs

crates/bench/src/bin/fig12_interconnectivity.rs:
