/root/repo/target/release/deps/table1_encoding-c1eca929c6aac2a0.d: crates/bench/src/bin/table1_encoding.rs

/root/repo/target/release/deps/table1_encoding-c1eca929c6aac2a0: crates/bench/src/bin/table1_encoding.rs

crates/bench/src/bin/table1_encoding.rs:
