/root/repo/target/release/deps/fig10_concurrency-bd6284461c05a487.d: crates/bench/src/bin/fig10_concurrency.rs

/root/repo/target/release/deps/fig10_concurrency-bd6284461c05a487: crates/bench/src/bin/fig10_concurrency.rs

crates/bench/src/bin/fig10_concurrency.rs:
