/root/repo/target/release/deps/ext_sensitivity-1ef6ab458ab42f3c.d: crates/bench/src/bin/ext_sensitivity.rs

/root/repo/target/release/deps/ext_sensitivity-1ef6ab458ab42f3c: crates/bench/src/bin/ext_sensitivity.rs

crates/bench/src/bin/ext_sensitivity.rs:
