/root/repo/target/release/deps/fig14_comparison-6a16fafa39ba1495.d: crates/bench/src/bin/fig14_comparison.rs

/root/repo/target/release/deps/fig14_comparison-6a16fafa39ba1495: crates/bench/src/bin/fig14_comparison.rs

crates/bench/src/bin/fig14_comparison.rs:
