/root/repo/target/release/deps/bmrun-cc74856cd22141ec.d: crates/bench/src/bin/bmrun.rs

/root/repo/target/release/deps/bmrun-cc74856cd22141ec: crates/bench/src/bin/bmrun.rs

crates/bench/src/bin/bmrun.rs:
