/root/repo/target/release/deps/blockmaestro-12c880a7144962ee.d: crates/core/src/lib.rs crates/core/src/compare/mod.rs crates/core/src/compare/models.rs crates/core/src/compare/taskgraph.rs crates/core/src/correctness.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/faults.rs crates/core/src/guard.rs crates/core/src/hw.rs crates/core/src/jit.rs crates/core/src/modes.rs crates/core/src/streams.rs

/root/repo/target/release/deps/blockmaestro-12c880a7144962ee: crates/core/src/lib.rs crates/core/src/compare/mod.rs crates/core/src/compare/models.rs crates/core/src/compare/taskgraph.rs crates/core/src/correctness.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/faults.rs crates/core/src/guard.rs crates/core/src/hw.rs crates/core/src/jit.rs crates/core/src/modes.rs crates/core/src/streams.rs

crates/core/src/lib.rs:
crates/core/src/compare/mod.rs:
crates/core/src/compare/models.rs:
crates/core/src/compare/taskgraph.rs:
crates/core/src/correctness.rs:
crates/core/src/engine.rs:
crates/core/src/error.rs:
crates/core/src/faults.rs:
crates/core/src/guard.rs:
crates/core/src/hw.rs:
crates/core/src/jit.rs:
crates/core/src/modes.rs:
crates/core/src/streams.rs:
