/root/repo/target/release/deps/bm_bench-acea61a5289fb043.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbm_bench-acea61a5289fb043.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbm_bench-acea61a5289fb043.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
