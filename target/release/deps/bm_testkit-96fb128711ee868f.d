/root/repo/target/release/deps/bm_testkit-96fb128711ee868f.d: crates/testkit/src/lib.rs

/root/repo/target/release/deps/libbm_testkit-96fb128711ee868f.rlib: crates/testkit/src/lib.rs

/root/repo/target/release/deps/libbm_testkit-96fb128711ee868f.rmeta: crates/testkit/src/lib.rs

crates/testkit/src/lib.rs:
