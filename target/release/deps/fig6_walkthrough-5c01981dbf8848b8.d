/root/repo/target/release/deps/fig6_walkthrough-5c01981dbf8848b8.d: crates/core/tests/fig6_walkthrough.rs

/root/repo/target/release/deps/fig6_walkthrough-5c01981dbf8848b8: crates/core/tests/fig6_walkthrough.rs

crates/core/tests/fig6_walkthrough.rs:
