/root/repo/target/release/deps/bm_cmdq-b962eeb0706a3903.d: crates/cmdq/src/lib.rs crates/cmdq/src/api.rs crates/cmdq/src/deps.rs crates/cmdq/src/error.rs crates/cmdq/src/reorder.rs

/root/repo/target/release/deps/libbm_cmdq-b962eeb0706a3903.rlib: crates/cmdq/src/lib.rs crates/cmdq/src/api.rs crates/cmdq/src/deps.rs crates/cmdq/src/error.rs crates/cmdq/src/reorder.rs

/root/repo/target/release/deps/libbm_cmdq-b962eeb0706a3903.rmeta: crates/cmdq/src/lib.rs crates/cmdq/src/api.rs crates/cmdq/src/deps.rs crates/cmdq/src/error.rs crates/cmdq/src/reorder.rs

crates/cmdq/src/lib.rs:
crates/cmdq/src/api.rs:
crates/cmdq/src/deps.rs:
crates/cmdq/src/error.rs:
crates/cmdq/src/reorder.rs:
