/root/repo/target/release/deps/fault_injection-2812680002e59ddd.d: tests/fault_injection.rs

/root/repo/target/release/deps/fault_injection-2812680002e59ddd: tests/fault_injection.rs

tests/fault_injection.rs:
