/root/repo/target/release/deps/ext_streams-50ece3483fb1403f.d: crates/bench/src/bin/ext_streams.rs

/root/repo/target/release/deps/ext_streams-50ece3483fb1403f: crates/bench/src/bin/ext_streams.rs

crates/bench/src/bin/ext_streams.rs:
