/root/repo/target/release/deps/table3_storage-38308fc18563c2f7.d: crates/bench/src/bin/table3_storage.rs

/root/repo/target/release/deps/table3_storage-38308fc18563c2f7: crates/bench/src/bin/table3_storage.rs

crates/bench/src/bin/table3_storage.rs:
