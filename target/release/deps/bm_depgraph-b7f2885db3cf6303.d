/root/repo/target/release/deps/bm_depgraph-b7f2885db3cf6303.d: crates/depgraph/src/lib.rs crates/depgraph/src/build.rs crates/depgraph/src/encoding.rs crates/depgraph/src/graph.rs crates/depgraph/src/interval_index.rs crates/depgraph/src/pattern.rs

/root/repo/target/release/deps/libbm_depgraph-b7f2885db3cf6303.rlib: crates/depgraph/src/lib.rs crates/depgraph/src/build.rs crates/depgraph/src/encoding.rs crates/depgraph/src/graph.rs crates/depgraph/src/interval_index.rs crates/depgraph/src/pattern.rs

/root/repo/target/release/deps/libbm_depgraph-b7f2885db3cf6303.rmeta: crates/depgraph/src/lib.rs crates/depgraph/src/build.rs crates/depgraph/src/encoding.rs crates/depgraph/src/graph.rs crates/depgraph/src/interval_index.rs crates/depgraph/src/pattern.rs

crates/depgraph/src/lib.rs:
crates/depgraph/src/build.rs:
crates/depgraph/src/encoding.rs:
crates/depgraph/src/graph.rs:
crates/depgraph/src/interval_index.rs:
crates/depgraph/src/pattern.rs:
