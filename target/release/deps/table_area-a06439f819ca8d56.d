/root/repo/target/release/deps/table_area-a06439f819ca8d56.d: crates/bench/src/bin/table_area.rs

/root/repo/target/release/deps/table_area-a06439f819ca8d56: crates/bench/src/bin/table_area.rs

crates/bench/src/bin/table_area.rs:
