/root/repo/target/release/deps/blockmaestro_suite-8465abd9d337e9ac.d: src/lib.rs

/root/repo/target/release/deps/libblockmaestro_suite-8465abd9d337e9ac.rlib: src/lib.rs

/root/repo/target/release/deps/libblockmaestro_suite-8465abd9d337e9ac.rmeta: src/lib.rs

src/lib.rs:
