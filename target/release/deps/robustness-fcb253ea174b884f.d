/root/repo/target/release/deps/robustness-fcb253ea174b884f.d: tests/robustness.rs

/root/repo/target/release/deps/robustness-fcb253ea174b884f: tests/robustness.rs

tests/robustness.rs:
