/root/repo/target/release/deps/fig09_speedup-a343c80bb5eb60fb.d: crates/bench/src/bin/fig09_speedup.rs

/root/repo/target/release/deps/fig09_speedup-a343c80bb5eb60fb: crates/bench/src/bin/fig09_speedup.rs

crates/bench/src/bin/fig09_speedup.rs:
