//! Dependency inspector: a tour of the launch-time analysis pipeline on a
//! single kernel pair. Shows Algorithm 1's backward slice verdicts, the
//! per-TB read/write sets from value-range analysis, the bipartite graph,
//! its pattern classification, and the Table-I encoded storage cost.
//!
//! Run with: `cargo run --release --example dependency_inspector`

use bm_depgraph::{build_graph, storage, HazardMode};
use bm_ptx::absint::analyze_launch;
use bm_ptx::kernel::{ArgValue, Dim3, Launch};
use bm_ptx::mem::AddressSpace;
use bm_ptx::parser::parse_kernel;
use bm_ptx::taint::slice_kernel;
use std::sync::Arc;

fn main() {
    // Producer: a blur writing OUT[i] from IN[i-1..i+1] (clamped).
    let producer = Arc::new(
        parse_kernel(
            r#".entry blur(.param .u64 IN, .param .u64 OUT, .param .u32 n)
            {
              ld.param.u64 %rd1, [IN];
              ld.param.u64 %rd2, [OUT];
              ld.param.u32 %r9, [n];
              mov.u32 %r1, %ctaid.x;
              mov.u32 %r2, %ntid.x;
              mov.u32 %r3, %tid.x;
              mad.lo.u32 %r4, %r1, %r2, %r3;
              setp.ge.u32 %p1, %r4, %r9;
              @%p1 bra $DONE;
              max.u32 %r5, %r4, 1;
              sub.u32 %r5, %r5, 1;
              add.u32 %r6, %r4, 1;
              sub.u32 %r7, %r9, 1;
              min.u32 %r6, %r6, %r7;
              mul.wide.u32 %rd3, %r5, 4;
              add.u64 %rd4, %rd1, %rd3;
              ld.global.f32 %f1, [%rd4];
              mul.wide.u32 %rd5, %r6, 4;
              add.u64 %rd6, %rd1, %rd5;
              ld.global.f32 %f2, [%rd6];
              add.f32 %f3, %f1, %f2;
              mul.wide.u32 %rd7, %r4, 4;
              add.u64 %rd8, %rd2, %rd7;
              st.global.f32 [%rd8], %f3;
            $DONE:
              ret;
            }"#,
        )
        .unwrap(),
    );

    let n = 2048u32;
    let mut space = AddressSpace::new();
    let a = space.alloc(4 * n as u64);
    let b = space.alloc(4 * n as u64);
    let c = space.alloc(4 * n as u64);
    let block = Dim3::x(256);
    let grid = Dim3::x(n / 256);
    let k1 = Launch::new(
        producer.clone(),
        grid,
        block,
        vec![
            ArgValue::Ptr(a.base),
            ArgValue::Ptr(b.base),
            ArgValue::U32(n),
        ],
    );
    let k2 = Launch::new(
        producer,
        grid,
        block,
        vec![
            ArgValue::Ptr(b.base),
            ArgValue::Ptr(c.base),
            ArgValue::U32(n),
        ],
    );

    // Algorithm 1: are the kernel's addresses statically derivable?
    let slice = slice_kernel(&k1.kernel);
    println!("Algorithm 1 backward slice on `blur`:");
    for (idx, verdict) in &slice.per_access {
        println!("  instruction {idx:>2}: {verdict:?}");
    }
    println!("  all static: {}\n", slice.all_static());

    // Value-range analysis: per-TB read/write byte ranges.
    let acc1 = analyze_launch(&k1);
    let acc2 = analyze_launch(&k2);
    println!("per-TB access sets of K1 (first 3 blocks):");
    for (tb, t) in acc1.per_tb.iter().take(3).enumerate() {
        println!("  TB{tb}: reads {}  writes {}", t.reads, t.writes);
    }

    // Bipartite dependency graph K1 -> K2.
    let g = build_graph(&acc1, &acc2, HazardMode::Raw);
    println!("\nbipartite graph K1 -> K2: {g}");
    let parents = g.parents_of_children();
    for (c, ps) in parents.iter().take(4).enumerate() {
        println!("  child TB{c} <- parents {ps:?}");
    }

    // Pattern classification and Table-I storage.
    let st = storage(&g);
    println!("\npattern      : {}", st.pattern);
    println!("encoded bytes: {}", st.encoded_bytes);
    println!("plain bytes  : {}", st.plain_bytes);
    println!("ratio        : {:.3}", st.ratio());
}
