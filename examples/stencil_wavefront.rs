//! Stencil and wavefront workloads: the two dependency shapes where
//! thread-block-level resolution shines. Runs Hotspot (overlapped halo
//! pattern) through the full engine, then a 4K-task wavefront through the
//! Fig. 14 comparison models (CDP, Wireframe, BlockMaestro).
//!
//! Run with: `cargo run --release --example stencil_wavefront`

use blockmaestro::compare::{run_task_graph, CompareModel, TaskGraph};
use blockmaestro::{check_schedule, run_app, ExecMode};
use bm_simt::GpuConfig;
use bm_workloads::{hotspot, Scale};

fn main() {
    let cfg = GpuConfig::titan_x_pascal();

    // --- Part 1: Hotspot, an overlapped-pattern stencil -----------------
    let app = hotspot::build(Scale::Full);
    println!(
        "Hotspot: {} ping-pong stencil kernels, overlapped halos",
        app.num_kernels()
    );
    let baseline = run_app(&cfg, &app, ExecMode::Baseline);
    let coarse = run_app(&cfg, &app, ExecMode::PreLaunch { window: 2 });
    let fine = run_app(&cfg, &app, ExecMode::ProducerPriority { window: 2 });
    println!(
        "  baseline            : {:>9} cycles",
        baseline.total_cycles
    );
    println!(
        "  pre-launch only     : {:>9} cycles ({:.3}x)",
        coarse.total_cycles,
        baseline.total_cycles as f64 / coarse.total_cycles as f64
    );
    println!(
        "  + TB-level deps     : {:>9} cycles ({:.3}x)",
        fine.total_cycles,
        baseline.total_cycles as f64 / fine.total_cycles as f64
    );
    let eq = check_schedule(&app, &fine.schedule).expect("replay");
    println!("  correctness         : {eq}");
    assert!(eq.is_match());

    // --- Part 2: a 4K-task wavefront under four execution models --------
    let g = TaskGraph::diamond("SW", 64, 3_000, 128);
    println!(
        "\nWavefront '{}': {} tasks over {} waves",
        g.name,
        g.num_tasks(),
        g.num_levels()
    );
    let cdp = run_task_graph(&cfg, &g, CompareModel::Cdp).total_cycles;
    for m in CompareModel::all() {
        let t = run_task_graph(&cfg, &g, m).total_cycles;
        println!(
            "  {:<12}: {:>9} cycles ({:.3}x vs CDP)",
            m.label(),
            t,
            cdp as f64 / t as f64
        );
    }
    println!(
        "\nBlockMaestro's consumer-priority run-ahead reaches ~2x over CDP\n\
         without any task-graph programming — the dependency graphs come\n\
         from launch-time PTX analysis alone."
    );
}
