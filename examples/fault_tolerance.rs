//! Fault-tolerant execution demo: corrupt launch-time analysis products
//! and dependency hardware on purpose, and watch the runtime soundness
//! guard detect the damage, quarantine the offending kernel, and re-run
//! to the exact serialized result.
//!
//! ```bash
//! cargo run --release --example fault_tolerance
//! ```

use blockmaestro::{
    check_schedule, corrupt_access_set, jit_analyze_app, random_plan, try_run_app,
    try_run_app_faulty, ExecMode, FaultClass, FaultPlan, FaultRng,
};
use bm_cmdq::{ApiCall, Application};
use bm_depgraph::HazardMode;
use bm_ptx::kernel::{ArgValue, Dim3, Launch};
use bm_ptx::mem::AddressSpace;
use bm_ptx::parser::parse_kernel;
use bm_simt::GpuConfig;
use std::collections::HashMap;
use std::sync::Arc;

fn chain_app() -> Application {
    let tbs = 8u32;
    let n = tbs as u64 * 64;
    let mut space = AddressSpace::new();
    let allocs: Vec<_> = (0..4).map(|_| space.alloc(4 * n)).collect();
    let k = Arc::new(
        parse_kernel(
            r#".entry step(.param .u64 X, .param .u64 Y) {
                 ld.param.u64 %rd1, [X];
                 ld.param.u64 %rd2, [Y];
                 mov.u32 %r1, %ctaid.x;
                 mov.u32 %r2, %ntid.x;
                 mov.u32 %r3, %tid.x;
                 mad.lo.u32 %r4, %r1, %r2, %r3;
                 mul.wide.u32 %rd3, %r4, 4;
                 add.u64 %rd4, %rd1, %rd3;
                 ld.global.f32 %f1, [%rd4];
                 add.f32 %f2, %f1, 0f3F800000;
                 add.u64 %rd5, %rd2, %rd3;
                 st.global.f32 [%rd5], %f2;
                 ret;
               }"#,
        )
        .unwrap(),
    );
    let mut host_data = HashMap::new();
    host_data.insert(
        allocs[0].id,
        (0..n).map(|i| i as f32 * 0.25).collect::<Vec<_>>(),
    );
    let mut calls = vec![ApiCall::MemcpyH2D {
        alloc: allocs[0].id,
        bytes: 4 * n,
    }];
    calls.extend((0..3).map(|i| {
        ApiCall::KernelLaunch(Launch::new(
            k.clone(),
            Dim3::x(tbs),
            Dim3::x(64),
            vec![
                ArgValue::Ptr(allocs[i].base),
                ArgValue::Ptr(allocs[i + 1].base),
            ],
        ))
    }));
    Application {
        name: "fault-demo".into(),
        space,
        calls,
        host_data,
    }
}

fn main() {
    let cfg = GpuConfig::small();
    let app = chain_app();
    let mode = ExecMode::ConsumerPriority { window: 2 };

    // 1. Clean guarded run: the guard verifies and stays silent.
    println!("== clean run ==");
    let report = try_run_app(&cfg, &app, mode).expect("clean run");
    println!(
        "cycles {}  violations {}  quarantined {}  rounds {}",
        report.kernel_region_cycles,
        report.guard.violations_detected,
        report.guard.kernels_quarantined,
        report.guard.recovery_rounds,
    );

    // 2. Corrupt kernel 1's declared access set: its TBs now touch bytes
    //    outside what launch-time analysis claims, which is exactly the
    //    lie the soundness guard exists to catch.
    println!("\n== corrupted access set ==");
    let mut jit = jit_analyze_app(&cfg, &app, HazardMode::Raw);
    assert!(corrupt_access_set(&mut jit, 1, HazardMode::Raw));
    let report = try_run_app_faulty(
        &cfg,
        &app,
        jit,
        mode,
        HazardMode::Raw,
        &FaultPlan::default(),
    )
    .expect("guard must recover");
    println!(
        "violations {}  quarantined {}  rounds {}  cycles lost {}",
        report.guard.violations_detected,
        report.guard.kernels_quarantined,
        report.guard.recovery_rounds,
        report.guard.cycles_lost_to_fallback,
    );
    let eq = check_schedule(&app, &report.schedule).unwrap();
    println!("recovered schedule: {eq}");

    // 3. Drop a dependency-list edge in hardware: the consumer TB is
    //    never released, the DES watchdog reports the deadlock, and the
    //    guard falls back to barrier execution.
    println!("\n== dropped dependency edge ==");
    let jit = jit_analyze_app(&cfg, &app, HazardMode::Raw);
    let plan = random_plan(FaultClass::DropChild, &jit, &mut FaultRng::new(7)).unwrap();
    let report = try_run_app_faulty(&cfg, &app, jit, mode, HazardMode::Raw, &plan)
        .expect("guard must recover from the deadlock");
    println!(
        "violations {}  quarantined {}  rounds {}  cycles lost {}",
        report.guard.violations_detected,
        report.guard.kernels_quarantined,
        report.guard.recovery_rounds,
        report.guard.cycles_lost_to_fallback,
    );
    let eq = check_schedule(&app, &report.schedule).unwrap();
    println!("recovered schedule: {eq}");
}
