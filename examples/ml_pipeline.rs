//! ML pipeline: runs the 22-kernel AlexNet inference workload under every
//! execution mode and reports speedup, TB concurrency, and the layer-pair
//! dependency patterns the launch-time analysis extracted — the scenario
//! the paper's introduction motivates (every CNN layer is a kernel and
//! consecutive layers are producer/consumer pairs).
//!
//! Run with: `cargo run --release --example ml_pipeline`

use blockmaestro::{jit_analyze_app, run_analyzed, ExecMode};
use bm_depgraph::HazardMode;
use bm_simt::GpuConfig;
use bm_workloads::{alexnet, Scale};

fn main() {
    let cfg = GpuConfig::titan_x_pascal();
    let app = alexnet::build(Scale::Full);
    println!("AlexNet: {} kernels", app.num_kernels());

    // One launch-time analysis pass shared by all modes (this is the work
    // the paper masks behind kernel pre-launching).
    let jit = jit_analyze_app(&cfg, &app, HazardMode::Raw);
    println!("\nlayer-pair dependency patterns:");
    for k in jit.iter().skip(1) {
        println!(
            "  {:>12} -> {:<12} {:<28} ({} TBs, {} edges)",
            jit[k.seq as usize - 1].name,
            k.name,
            k.storage.pattern.to_string(),
            k.profile.n_tbs,
            k.graph.num_edges(),
        );
    }

    let baseline = run_analyzed(&cfg, &app, &jit, ExecMode::Baseline);
    println!("\nmode                    cycles    speedup  avg TB concurrency");
    println!(
        "{:<22} {:>9} {:>9} {:>12.1}",
        "baseline", baseline.total_cycles, "1.000x", baseline.avg_concurrency
    );
    for mode in ExecMode::figure9_variants() {
        let r = run_analyzed(&cfg, &app, &jit, mode);
        println!(
            "{:<22} {:>9} {:>8.3}x {:>12.1}",
            mode.to_string(),
            r.total_cycles,
            baseline.total_cycles as f64 / r.total_cycles as f64,
            r.avg_concurrency,
        );
    }
    println!(
        "\nAs in the paper, compute-heavy CNN layers gain little end-to-end\n\
         speedup (launch overhead is a small fraction of layer time) but\n\
         fine-grain dependency resolution raises TB concurrency."
    );
}
