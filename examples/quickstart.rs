//! Quickstart: write two dependent kernels in mini-PTX, let BlockMaestro
//! extract the inter-kernel thread-block dependency graph at launch time,
//! and compare baseline vs. pre-launched execution.
//!
//! Run with: `cargo run --release --example quickstart`

use blockmaestro::{check_schedule, run_app, ExecMode};
use bm_cmdq::{ApiCall, Application};
use bm_ptx::kernel::{ArgValue, Dim3, Launch};
use bm_ptx::mem::AddressSpace;
use bm_ptx::parser::parse_kernel;
use bm_simt::GpuConfig;
use std::collections::HashMap;
use std::sync::Arc;

fn main() {
    // A SAXPY-style kernel: Y[i] = 2*X[i] + 1.
    let kernel = Arc::new(
        parse_kernel(
            r#".entry saxpy(.param .u64 X, .param .u64 Y)
            {
              ld.param.u64 %rd1, [X];
              ld.param.u64 %rd2, [Y];
              mov.u32 %r1, %ctaid.x;
              mov.u32 %r2, %ntid.x;
              mov.u32 %r3, %tid.x;
              mad.lo.u32 %r4, %r1, %r2, %r3;
              mul.wide.u32 %rd3, %r4, 4;
              add.u64 %rd4, %rd1, %rd3;
              ld.global.f32 %f1, [%rd4];
              fma.rn.f32 %f2, %f1, 0f40000000, 0f3F800000;
              add.u64 %rd5, %rd2, %rd3;
              st.global.f32 [%rd5], %f2;
              ret;
            }"#,
        )
        .expect("kernel parses"),
    );

    // Device allocations and a two-kernel chain A -> B -> C.
    let n = 64 * 1024u64;
    let mut space = AddressSpace::new();
    let a = space.alloc(4 * n);
    let b = space.alloc(4 * n);
    let c = space.alloc(4 * n);
    let grid = Dim3::x((n / 256) as u32);
    let block = Dim3::x(256);
    let mut host_data = HashMap::new();
    host_data.insert(a.id, (0..n).map(|i| i as f32).collect::<Vec<_>>());
    let app = Application {
        name: "quickstart".into(),
        space,
        calls: vec![
            ApiCall::Malloc { alloc: a.id },
            ApiCall::Malloc { alloc: b.id },
            ApiCall::Malloc { alloc: c.id },
            ApiCall::MemcpyH2D {
                alloc: a.id,
                bytes: 4 * n,
            },
            ApiCall::KernelLaunch(Launch::new(
                kernel.clone(),
                grid,
                block,
                vec![ArgValue::Ptr(a.base), ArgValue::Ptr(b.base)],
            )),
            ApiCall::KernelLaunch(Launch::new(
                kernel,
                grid,
                block,
                vec![ArgValue::Ptr(b.base), ArgValue::Ptr(c.base)],
            )),
            ApiCall::MemcpyD2H {
                alloc: c.id,
                bytes: 4 * n,
            },
        ],
        host_data,
    };

    let cfg = GpuConfig::titan_x_pascal();
    let baseline = run_app(&cfg, &app, ExecMode::Baseline);
    let bm = run_app(&cfg, &app, ExecMode::ConsumerPriority { window: 2 });

    println!("kernels               : {}", bm.num_kernels);
    println!(
        "detected patterns     : {:?}",
        bm.patterns
            .iter()
            .map(|(_, p)| p.to_string())
            .collect::<Vec<_>>()
    );
    println!(
        "baseline              : {} cycles ({:.1} us)",
        baseline.total_cycles,
        cfg.cycles_to_us(baseline.total_cycles)
    );
    println!(
        "blockmaestro          : {} cycles ({:.1} us)",
        bm.total_cycles,
        cfg.cycles_to_us(bm.total_cycles)
    );
    println!(
        "speedup               : {:.3}x",
        baseline.total_cycles as f64 / bm.total_cycles as f64
    );

    // Architectural invisibility: the overlapped schedule computes the same
    // memory image as serialized execution.
    let eq = check_schedule(&app, &bm.schedule).expect("schedule replays");
    println!("correctness           : {eq}");
    assert!(eq.is_match());
}
