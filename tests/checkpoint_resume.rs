//! Kill-and-resume equivalence across pipeline flavors.
//!
//! For every flavor of the execution pipeline (serial analysis, parallel
//! analysis, budgeted, guarded, traced, degraded) and several seeded
//! configurations, the run is checkpointed at every kernel-retirement
//! boundary, killed at each interior boundary in turn, and resumed from
//! the stored snapshot. The resumed run must reproduce the uninterrupted
//! run's `RunReport` bit for bit — and, under a recording tracer, the
//! same event stream (modulo the checkpoint instants themselves).

use blockmaestro::{
    app_fingerprint, try_jit_analyze_app, try_jit_analyze_app_budgeted, try_jit_analyze_app_par,
    try_run_analyzed_checkpointed, try_run_app_checkpointed, try_run_app_checkpointed_traced,
    AnalysisBudget, AnalysisCache, BmError, CheckpointPolicy, CheckpointSession, EngineError,
    ExecMode, FaultPlan, JitKernel, MemStore, ParallelConfig, RunReport, RunSnapshot,
};
use bm_cmdq::{ApiCall, Application};
use bm_depgraph::HazardMode;
use bm_ptx::kernel::{ArgValue, Dim3, Launch};
use bm_ptx::mem::AddressSpace;
use bm_ptx::parser::parse_kernel;
use bm_simt::GpuConfig;
use bm_trace::{NullTracer, RecordingTracer, TraceEvent};
use std::collections::HashMap;
use std::sync::Arc;

/// `Y[i] = X[i] + 1` chained over `n_kernels` buffer pairs.
fn chain_app(n_kernels: usize, tbs: u32) -> Application {
    let n = tbs as u64 * 64;
    let mut space = AddressSpace::new();
    let allocs: Vec<_> = (0..=n_kernels).map(|_| space.alloc(4 * n)).collect();
    let k = Arc::new(
        parse_kernel(
            r#".entry step(.param .u64 X, .param .u64 Y) {
                 ld.param.u64 %rd1, [X];
                 ld.param.u64 %rd2, [Y];
                 mov.u32 %r1, %ctaid.x;
                 mov.u32 %r2, %ntid.x;
                 mov.u32 %r3, %tid.x;
                 mad.lo.u32 %r4, %r1, %r2, %r3;
                 mul.wide.u32 %rd3, %r4, 4;
                 add.u64 %rd4, %rd1, %rd3;
                 ld.global.f32 %f1, [%rd4];
                 add.f32 %f2, %f1, 0f3F800000;
                 add.u64 %rd5, %rd2, %rd3;
                 st.global.f32 [%rd5], %f2;
                 ret;
               }"#,
        )
        .unwrap(),
    );
    let mut host_data = HashMap::new();
    host_data.insert(
        allocs[0].id,
        (0..n).map(|i| i as f32 * 0.25).collect::<Vec<_>>(),
    );
    let mut calls = vec![ApiCall::MemcpyH2D {
        alloc: allocs[0].id,
        bytes: 4 * n,
    }];
    calls.extend((0..n_kernels).map(|i| {
        ApiCall::KernelLaunch(Launch::new(
            k.clone(),
            Dim3::x(tbs),
            Dim3::x(64),
            vec![
                ArgValue::Ptr(allocs[i].base),
                ArgValue::Ptr(allocs[i + 1].base),
            ],
        ))
    }));
    Application {
        name: "ckpt-chain".into(),
        space,
        calls,
        host_data,
    }
}

/// Seeded configurations: (kernels, TBs, mode). At least three per flavor.
fn cases() -> Vec<(usize, u32, ExecMode)> {
    vec![
        (3, 8, ExecMode::ProducerPriority { window: 2 }),
        (4, 4, ExecMode::ConsumerPriority { window: 3 }),
        (5, 8, ExecMode::PreLaunch { window: 2 }),
    ]
}

/// One engine-level checkpointed run: snapshot every kernel into `store`,
/// optionally resuming from `resume_snap`, optionally dying at `kill`.
fn engine_run(
    cfg: &GpuConfig,
    app: &Application,
    jit: &[JitKernel],
    mode: ExecMode,
    kill: Option<u32>,
    store: &mut MemStore,
    resume_snap: Option<RunSnapshot>,
) -> Result<RunReport, EngineError> {
    let mut session = CheckpointSession::disabled();
    session.policy = CheckpointPolicy::every_kernels(1);
    session.store = Some(store);
    session.app_fp = app_fingerprint(app);
    session.hazard = format!("{:?}", HazardMode::Raw);
    session.resume = resume_snap;
    let fault = FaultPlan {
        kill_at_kernel: kill,
        ..FaultPlan::default()
    };
    try_run_analyzed_checkpointed(cfg, app, jit, mode, &fault, &NullTracer, &mut session)
}

/// Kills at every interior boundary and resumes; every resumed report
/// must equal the uninterrupted `reference`.
fn assert_resume_equivalence(
    cfg: &GpuConfig,
    app: &Application,
    jit: &[JitKernel],
    mode: ExecMode,
    n_kernels: usize,
    reference: &RunReport,
    label: &str,
) {
    for q in 1..n_kernels as u32 {
        let mut store = MemStore::default();
        let err = engine_run(cfg, app, jit, mode, Some(q), &mut store, None).unwrap_err();
        assert!(
            matches!(err, EngineError::Killed { retired, .. } if retired >= q),
            "{label}: kill at {q} under {mode} produced {err}"
        );
        assert!(
            !store.snaps.is_empty(),
            "{label}: kill at {q} must land after a save"
        );
        let snap = RunSnapshot::decode(store.snaps.last().unwrap()).expect("snapshot decodes");
        let resumed = engine_run(cfg, app, jit, mode, None, &mut store, Some(snap))
            .unwrap_or_else(|e| panic!("{label}: resume from {q} failed: {e}"));
        assert_eq!(
            &resumed, reference,
            "{label}: resume from boundary {q} under {mode} diverged"
        );
        assert_eq!(
            resumed.to_json().to_string(),
            reference.to_json().to_string(),
            "{label}: JSON report diverged after resume from {q}"
        );
    }
}

fn check_engine_flavor(label: &str, analyze: impl Fn(&GpuConfig, &Application) -> Vec<JitKernel>) {
    let cfg = GpuConfig::small();
    for (n_kernels, tbs, mode) in cases() {
        let app = chain_app(n_kernels, tbs);
        let jit = analyze(&cfg, &app);
        let mut ref_store = MemStore::default();
        let reference = engine_run(&cfg, &app, &jit, mode, None, &mut ref_store, None)
            .expect("uninterrupted run");
        assert_eq!(
            ref_store.snaps.len(),
            n_kernels - 1,
            "{label}: one snapshot per interior boundary"
        );
        assert_resume_equivalence(&cfg, &app, &jit, mode, n_kernels, &reference, label);
    }
}

#[test]
fn serial_pipeline_resumes_exactly() {
    check_engine_flavor("serial", |cfg, app| {
        try_jit_analyze_app(cfg, app, HazardMode::Raw).expect("analysis")
    });
}

#[test]
fn parallel_pipeline_resumes_exactly() {
    check_engine_flavor("parallel", |cfg, app| {
        let budget = AnalysisBudget::default();
        let mut cache = AnalysisCache::for_budget(&budget);
        try_jit_analyze_app_par(
            cfg,
            app,
            HazardMode::Raw,
            &budget,
            &mut cache,
            &ParallelConfig::with_threads(4).oversubscribed(),
        )
        .expect("analysis")
    });
}

#[test]
fn budgeted_pipeline_resumes_exactly() {
    check_engine_flavor("budgeted", |cfg, app| {
        let budget = AnalysisBudget::default();
        let mut cache = AnalysisCache::for_budget(&budget);
        try_jit_analyze_app_budgeted(cfg, app, HazardMode::Raw, &budget, &mut cache)
            .expect("analysis")
    });
}

#[test]
fn degraded_pipeline_resumes_exactly() {
    // An exhausted budget pushes every kernel down the ladder; checkpoint
    // state must capture the degraded engine exactly the same way.
    check_engine_flavor("degraded", |cfg, app| {
        let budget = AnalysisBudget::exhausted();
        let mut cache = AnalysisCache::for_budget(&budget);
        let jit = try_jit_analyze_app_budgeted(cfg, app, HazardMode::Raw, &budget, &mut cache)
            .expect("analysis");
        assert!(
            jit.iter().any(|k| k.degradation.is_degraded()),
            "exhausted budget must degrade"
        );
        jit
    });
}

#[test]
fn guarded_pipeline_resumes_exactly() {
    let cfg = GpuConfig::small();
    let policy = CheckpointPolicy::every_kernels(1);
    for (n_kernels, tbs, mode) in cases() {
        let app = chain_app(n_kernels, tbs);
        let mut ref_store = MemStore::default();
        let reference = try_run_app_checkpointed(
            &cfg,
            &app,
            mode,
            HazardMode::Raw,
            &FaultPlan::default(),
            policy,
            &mut ref_store,
            false,
        )
        .expect("uninterrupted guarded run");
        for q in 1..n_kernels as u32 {
            let mut store = MemStore::default();
            let kill = FaultPlan {
                kill_at_kernel: Some(q),
                ..FaultPlan::default()
            };
            let err = try_run_app_checkpointed(
                &cfg,
                &app,
                mode,
                HazardMode::Raw,
                &kill,
                policy,
                &mut store,
                false,
            )
            .unwrap_err();
            assert!(
                matches!(err, BmError::Engine(EngineError::Killed { .. })),
                "guarded: kill at {q} produced {err}"
            );
            let resumed = try_run_app_checkpointed(
                &cfg,
                &app,
                mode,
                HazardMode::Raw,
                &FaultPlan::default(),
                policy,
                &mut store,
                true,
            )
            .unwrap_or_else(|e| panic!("guarded: resume from {q} failed: {e}"));
            assert_eq!(resumed, reference, "guarded: resume from {q} diverged");
        }
    }
}

#[test]
fn traced_pipeline_resumes_with_an_identical_event_stream() {
    let cfg = GpuConfig::small();
    for (n_kernels, tbs, mode) in cases() {
        let app = chain_app(n_kernels, tbs);
        // Reference: traced, checkpointing machinery off — a pure stream.
        let ref_tracer = RecordingTracer::new();
        let mut null_store = MemStore::default();
        let reference = try_run_app_checkpointed_traced(
            &cfg,
            &app,
            mode,
            HazardMode::Raw,
            &FaultPlan::default(),
            CheckpointPolicy::disabled(),
            &mut null_store,
            false,
            &ref_tracer,
        )
        .expect("reference traced run");
        let ref_events = ref_tracer.events();
        assert!(
            ref_events
                .iter()
                .all(|e| !e.kind().starts_with("checkpoint")),
            "disabled policy must emit no checkpoint events"
        );
        for q in 1..n_kernels as u32 {
            let mut store = MemStore::default();
            let kill = FaultPlan {
                kill_at_kernel: Some(q),
                ..FaultPlan::default()
            };
            let kill_tracer = RecordingTracer::new();
            let err = try_run_app_checkpointed_traced(
                &cfg,
                &app,
                mode,
                HazardMode::Raw,
                &kill,
                CheckpointPolicy::every_kernels(1),
                &mut store,
                false,
                &kill_tracer,
            )
            .unwrap_err();
            assert!(matches!(err, BmError::Engine(EngineError::Killed { .. })));
            let resume_tracer = RecordingTracer::new();
            let resumed = try_run_app_checkpointed_traced(
                &cfg,
                &app,
                mode,
                HazardMode::Raw,
                &FaultPlan::default(),
                CheckpointPolicy::every_kernels(1),
                &mut store,
                true,
                &resume_tracer,
            )
            .unwrap_or_else(|e| panic!("traced: resume from {q} failed: {e}"));
            assert_eq!(resumed, reference, "traced: resume from {q} diverged");
            let events = resume_tracer.events();
            assert!(
                events.iter().any(|e| e.kind() == "checkpoint_load"),
                "resume must stamp a checkpoint_load instant"
            );
            let replayed: Vec<TraceEvent> = events
                .into_iter()
                .filter(|e| !e.kind().starts_with("checkpoint"))
                .collect();
            assert_eq!(
                replayed, ref_events,
                "traced: resume from {q} produced a different event stream"
            );
        }
    }
}

#[test]
fn mode_mismatch_is_rejected_and_run_starts_fresh() {
    let cfg = GpuConfig::small();
    let app = chain_app(3, 8);
    let policy = CheckpointPolicy::every_kernels(1);
    // Save snapshots under producer priority...
    let mut store = MemStore::default();
    let kill = FaultPlan {
        kill_at_kernel: Some(1),
        ..FaultPlan::default()
    };
    let producer = ExecMode::ProducerPriority { window: 2 };
    let consumer = ExecMode::ConsumerPriority { window: 2 };
    try_run_app_checkpointed(
        &cfg,
        &app,
        producer,
        HazardMode::Raw,
        &kill,
        policy,
        &mut store,
        false,
    )
    .unwrap_err();
    // ...then resume under consumer priority: the snapshot must be
    // rejected (typed, traced) and the run must match a fresh one.
    let reference = try_run_app_checkpointed(
        &cfg,
        &app,
        consumer,
        HazardMode::Raw,
        &FaultPlan::default(),
        policy,
        &mut MemStore::default(),
        false,
    )
    .unwrap();
    let tracer = RecordingTracer::new();
    let crossed = try_run_app_checkpointed_traced(
        &cfg,
        &app,
        consumer,
        HazardMode::Raw,
        &FaultPlan::default(),
        policy,
        &mut store,
        true,
        &tracer,
    )
    .unwrap();
    assert_eq!(crossed, reference);
    assert!(
        tracer
            .events()
            .iter()
            .any(|e| e.kind() == "checkpoint_reject"),
        "mode mismatch must surface as a checkpoint_reject instant"
    );
}
