//! Chrome trace-event export schema checks (DESIGN.md §9).
//!
//! For every [`ExecMode`], records a run and validates the exported
//! document with the crate's own strict JSON parser: event `ph` kinds,
//! required `ts`/`pid`/`tid` fields, instant scopes, metadata naming for
//! every referenced track, and — the property Perfetto rendering relies
//! on — that the spans assigned to any one `tid` never overlap.

mod common;

use blockmaestro::ExecMode;
use bm_depgraph::HazardMode;
use bm_simt::GpuConfig;
use bm_testkit::Rng;
use bm_trace::json::{self, Json};
use bm_trace::{export_chrome_trace, RecordingTracer};
use bm_workloads::{suite, Scale};
use common::{build_random_app, gen_spec};
use std::collections::{BTreeMap, BTreeSet};

fn all_modes() -> Vec<ExecMode> {
    vec![
        ExecMode::Baseline,
        ExecMode::IdealBaseline,
        ExecMode::GraphLaunch,
        ExecMode::PreLaunch { window: 3 },
        ExecMode::ProducerPriority { window: 3 },
        ExecMode::ConsumerPriority { window: 3 },
    ]
}

fn export_for(app: &bm_cmdq::Application, mode: ExecMode) -> String {
    let cfg = GpuConfig::small();
    let tracer = RecordingTracer::new();
    blockmaestro::run_app_with_tracer(&cfg, app, mode, HazardMode::Raw, &tracer);
    export_chrome_trace(&tracer.events())
}

fn num(e: &Json, key: &str) -> Option<u64> {
    e.get(key).and_then(|v| v.as_num()).map(|n| n as u64)
}

fn check_document(text: &str, ctx: &str) {
    let doc = json::parse(text).unwrap_or_else(|e| panic!("{ctx}: invalid JSON: {e}"));
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .unwrap_or_else(|| panic!("{ctx}: missing traceEvents array"));
    assert!(!events.is_empty(), "{ctx}: empty trace");
    assert_eq!(
        doc.get("displayTimeUnit").and_then(|v| v.as_str()),
        Some("ns"),
        "{ctx}: displayTimeUnit"
    );

    let mut named_processes: BTreeSet<u64> = BTreeSet::new();
    let mut named_threads: BTreeSet<(u64, u64)> = BTreeSet::new();
    let mut used_processes: BTreeSet<u64> = BTreeSet::new();
    let mut span_threads: BTreeSet<(u64, u64)> = BTreeSet::new();
    // (pid, tid) -> [(ts, dur)]
    let mut spans: BTreeMap<(u64, u64), Vec<(u64, u64)>> = BTreeMap::new();

    for e in events {
        let ph = e
            .get("ph")
            .and_then(|v| v.as_str())
            .unwrap_or_else(|| panic!("{ctx}: event without ph: {e}"));
        let pid = num(e, "pid").unwrap_or_else(|| panic!("{ctx}: event without pid: {e}"));
        match ph {
            "M" => {
                let kind = e.get("name").and_then(|v| v.as_str()).unwrap();
                assert!(
                    kind == "process_name" || kind == "thread_name",
                    "{ctx}: unknown metadata {kind}"
                );
                assert!(
                    e.get("args").and_then(|a| a.get("name")).is_some(),
                    "{ctx}: metadata without args.name"
                );
                if kind == "process_name" {
                    named_processes.insert(pid);
                } else {
                    named_threads.insert((pid, num(e, "tid").expect("thread_name needs tid")));
                }
            }
            "X" | "i" | "C" => {
                used_processes.insert(pid);
                let ts = num(e, "ts").unwrap_or_else(|| panic!("{ctx}: {ph} without ts: {e}"));
                let tid = num(e, "tid").unwrap_or_else(|| panic!("{ctx}: {ph} without tid: {e}"));
                assert!(
                    e.get("name").and_then(|v| v.as_str()).is_some(),
                    "{ctx}: {ph} without name"
                );
                match ph {
                    "X" => {
                        let dur =
                            num(e, "dur").unwrap_or_else(|| panic!("{ctx}: X without dur: {e}"));
                        span_threads.insert((pid, tid));
                        spans.entry((pid, tid)).or_default().push((ts, dur));
                    }
                    "i" => {
                        assert_eq!(
                            e.get("s").and_then(|v| v.as_str()),
                            Some("t"),
                            "{ctx}: instant without thread scope"
                        );
                    }
                    _ => {}
                }
            }
            other => panic!("{ctx}: unexpected ph {other}"),
        }
    }

    // Every track that carries events is named for the viewer.
    for pid in &used_processes {
        assert!(
            named_processes.contains(pid),
            "{ctx}: pid {pid} has events but no process_name"
        );
    }
    for key in &span_threads {
        assert!(
            named_threads.contains(key),
            "{ctx}: span thread {key:?} unnamed"
        );
    }

    // Spans within one tid must not overlap (lane assignment invariant) —
    // this is what makes the per-track nesting trivially proper.
    for ((pid, tid), mut list) in spans {
        list.sort_unstable();
        for w in list.windows(2) {
            let (ts0, dur0) = w[0];
            let (ts1, _) = w[1];
            assert!(
                ts1 >= ts0 + dur0.max(1),
                "{ctx}: overlapping spans on pid {pid} tid {tid}: {w:?}"
            );
        }
    }
}

#[test]
fn export_schema_valid_for_every_mode() {
    let mut rng = Rng::new(404);
    let n_buffers = 4;
    let specs: Vec<_> = (0..6).map(|_| gen_spec(&mut rng, n_buffers)).collect();
    let app = build_random_app(n_buffers, &specs);
    for mode in all_modes() {
        let text = export_for(&app, mode);
        check_document(&text, &format!("mode {mode}"));
    }
}

#[test]
fn export_schema_valid_for_real_workload() {
    let bench = suite()
        .into_iter()
        .find(|b| b.name == "GAUSSIAN")
        .expect("GAUSSIAN in suite");
    let app = (bench.build)(Scale::Small);
    let text = export_for(&app, ExecMode::ConsumerPriority { window: 3 });
    check_document(&text, "GAUSSIAN");
    // The real workload exercises every track family.
    let doc = json::parse(&text).unwrap();
    let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
    let pids: BTreeSet<u64> = events.iter().filter_map(|e| num(e, "pid")).collect();
    use bm_trace::chrome::{PID_ANALYSIS, PID_CMDQ, PID_HOST, PID_SCHED_HW, PID_SM_BASE};
    for pid in [PID_HOST, PID_CMDQ, PID_SCHED_HW, PID_ANALYSIS] {
        assert!(pids.contains(&pid), "missing track pid {pid}");
    }
    assert!(pids.iter().any(|&p| p >= PID_SM_BASE), "missing SM tracks");
}

#[test]
fn adaptive_thread_decision_is_recorded_in_the_trace() {
    use blockmaestro::{
        try_run_app_checkpointed_ctl, CheckpointPolicy, FaultPlan, MemStore, ParallelConfig, RunCtl,
    };
    use bm_trace::{CounterRegistry, TraceEvent};

    let cfg = GpuConfig::small();
    let tracer = RecordingTracer::new();
    let mut rng = Rng::new(77);
    let n_buffers = 3;
    // The default generator draws small grids — every kernel lands under
    // `serial_tb_threshold`, so an 8-thread config must fall back.
    let specs: Vec<_> = (0..4).map(|_| gen_spec(&mut rng, n_buffers)).collect();
    let app = build_random_app(n_buffers, &specs);
    let ctl = RunCtl {
        // Oversubscribed so the hardware-thread clamp (this may run on a
        // single-core box) cannot itself explain the serial fallback the
        // assertions below attribute to the small grids.
        par: Some(ParallelConfig::with_threads(8).oversubscribed()),
        cancel: None,
    };
    let mut store = MemStore::default();
    try_run_app_checkpointed_ctl(
        &cfg,
        &app,
        ExecMode::ConsumerPriority { window: 3 },
        HazardMode::Raw,
        &FaultPlan::default(),
        CheckpointPolicy::disabled(),
        &mut store,
        false,
        &tracer,
        &ctl,
    )
    .expect("clean run");

    let events = tracer.events();
    let decisions: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::ParallelDecision {
                tbs,
                threads,
                fallback,
                ..
            } => Some((*tbs, *threads, *fallback)),
            _ => None,
        })
        .collect();
    assert_eq!(
        decisions.len(),
        2 * specs.len(),
        "two decisions per analyzed kernel: absint fan-out and trace fan-out"
    );
    let threshold = ParallelConfig::default().serial_tb_threshold;
    for (tbs, threads, fallback) in &decisions {
        assert!(*tbs < threshold, "generator drew an over-threshold grid");
        assert!(*fallback, "small grid must force the serial fallback");
        assert_eq!(*threads, 1, "fallback runs single-threaded");
    }

    // The decisions also land in the counter registry.
    let mut counters = CounterRegistry::new();
    for e in &events {
        counters.fold(e);
    }
    assert_eq!(
        counters.counter("parallel_serial_fallback"),
        2 * specs.len() as u64
    );

    // And the export stays schema-valid with the new event present.
    check_document(&export_chrome_trace(&events), "adaptive decision trace");
}
