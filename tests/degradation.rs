//! The graceful-degradation ladder, end to end: every rung — precise,
//! coarse, whole-kernel barrier, pre-launch disabled — must preserve
//! architectural invisibility; the bounded analysis cache must hit on
//! repeated launches and evict deterministically; and admission
//! backpressure must shrink the pre-launch window under scheduler-buffer
//! spill pressure, visibly in the RunReport.

mod common;

use blockmaestro::{
    check_schedule, corrupt_access_set, corrupt_pattern, jit_analyze_app, jit_analyze_app_budgeted,
    random_plan, run_analyzed, try_run_analyzed_faulty, try_run_app_budgeted, AnalysisBudget,
    AnalysisCache, DegradationReason, DegradationRung, ExecMode, FaultClass, FaultPlan, FaultRng,
};
use bm_cmdq::{ApiCall, Application};
use bm_depgraph::HazardMode;
use bm_ptx::absint::{try_analyze_launch_fueled, try_analyze_launch_grouped};
use bm_ptx::access::RangeSet;
use bm_ptx::kernel::{ArgValue, Dim3, Launch};
use bm_ptx::mem::AddressSpace;
use bm_ptx::parser::parse_kernel;
use bm_simt::GpuConfig;
use bm_testkit::{check_cases, prop_ensure};
use common::{build_random_app, gen_spec, has_war_hazard, shift_kernel, KernelSpec};
use std::collections::HashMap;
use std::sync::Arc;

/// An N-kernel RAW chain of `shift` launches: K_i maps buffer i → i+1.
fn chain_app(kernels: usize, tbs: u32) -> Application {
    let specs: Vec<KernelSpec> = (0..kernels)
        .map(|i| KernelSpec {
            src_buf: i,
            dst_buf: i + 1,
            shift: 0,
            tbs,
        })
        .collect();
    build_random_app(kernels + 1, &specs)
}

/// An app launching the same kernel with *identical* arguments `reps`
/// times — every launch after the first has an identical cache key.
fn repeated_app(reps: usize, tbs: u32) -> Application {
    let specs: Vec<KernelSpec> = (0..reps)
        .map(|_| KernelSpec {
            src_buf: 0,
            dst_buf: 1,
            shift: 0,
            tbs,
        })
        .collect();
    build_random_app(2, &specs)
}

/// Worklist pops consumed by one analysis call (self-calibrating, so the
/// forced-rung tests stay correct if the kernel or the analyzer changes).
fn precise_cost(launch: &Launch) -> u64 {
    let mut fuel = 1u64 << 20;
    let r = try_analyze_launch_fueled(launch, &mut fuel).expect("valid launch");
    assert!(r.is_some(), "calibration must not run out of fuel");
    (1 << 20) - fuel
}

fn first_launch(app: &Application) -> Launch {
    app.launches()[0].clone()
}

#[test]
fn every_rung_preserves_architectural_invisibility() {
    // Random apps × random budgets: whichever rung the budget forces, the
    // guarded pipeline must accept only replay-equivalent schedules (the
    // soundness guard asserts replay-equivalence internally; we re-check
    // against serialized execution here, independently).
    check_cases(0xDE62ADE, 16, |rng| {
        let n_buffers = rng.range_usize(2, 5);
        let n_specs = rng.range_usize(2, 5);
        let window = rng.range_u32(2, 5);
        let hazard = *rng.pick(&[HazardMode::Raw, HazardMode::All]);
        let specs: Vec<KernelSpec> = (0..n_specs)
            .map(|_| {
                let mut s = gen_spec(rng, n_buffers);
                if s.src_buf == s.dst_buf {
                    s.dst_buf = (s.dst_buf + 1) % n_buffers;
                }
                s
            })
            .collect();
        if hazard == HazardMode::Raw && has_war_hazard(&specs) {
            return Ok(());
        }
        let app = build_random_app(n_buffers, &specs);
        let budget = match rng.range_u32(0, 4) {
            0 => AnalysisBudget::default(),
            1 => AnalysisBudget {
                // Enough for a handful of blocks, not a whole grid: most
                // kernels land on the coarse rung.
                absint_fuel: 8,
                ..AnalysisBudget::default()
            },
            2 => AnalysisBudget::exhausted(),
            _ => AnalysisBudget {
                trace_steps: 1,
                ..AnalysisBudget::default()
            },
        };
        let cfg = GpuConfig::small();
        let report = try_run_app_budgeted(
            &cfg,
            &app,
            ExecMode::ConsumerPriority { window },
            hazard,
            &budget,
        )
        .map_err(|e| format!("budgeted run must not fail on a valid app: {e}"))?;
        let eq = check_schedule(&app, &report.schedule).expect("replay");
        prop_ensure!(
            eq.is_match(),
            "schedule diverged under budget {budget:?} for specs {specs:?}"
        );
        // Every kernel's ladder placement and cache disposition must be
        // visible in the report.
        prop_ensure!(
            report.degradation.len() == n_specs,
            "one degradation entry per kernel"
        );
        prop_ensure!(
            report.cache_hits + report.cache_misses == n_specs as u64,
            "every launch is a cache hit or a miss"
        );
        Ok(())
    });
}

#[test]
fn precise_rung_is_the_default() {
    let cfg = GpuConfig::small();
    let app = chain_app(3, 8);
    let r = try_run_app_budgeted(
        &cfg,
        &app,
        ExecMode::ProducerPriority { window: 2 },
        HazardMode::Raw,
        &AnalysisBudget::default(),
    )
    .unwrap();
    for (name, d) in &r.degradation {
        assert_eq!(d.rung, DegradationRung::Precise, "{name}: {d}");
        assert_eq!(d.reason, DegradationReason::None);
    }
    assert!(
        r.pressure_events.is_empty(),
        "no backpressure on a tiny app"
    );
}

#[test]
fn starved_precise_fuel_forces_the_coarse_rung() {
    let cfg = GpuConfig::small();
    let app = chain_app(2, 24);
    // Half the measured precise cost: the per-TB pass must run dry, the
    // group-level retry (8 groups ≪ 24 TBs, fresh fuel) must finish.
    let budget = AnalysisBudget {
        absint_fuel: precise_cost(&first_launch(&app)) / 2,
        ..AnalysisBudget::default()
    };
    let mut cache = AnalysisCache::for_budget(&budget);
    let jit = jit_analyze_app_budgeted(&cfg, &app, HazardMode::Raw, &budget, &mut cache);
    for k in &jit {
        assert_eq!(k.degradation.rung, DegradationRung::Coarse, "{}", k.name);
        assert_eq!(k.degradation.reason, DegradationReason::AnalysisOverBudget);
        assert!(!k.access.non_static, "coarse is still a static analysis");
    }
    let r = try_run_app_budgeted(
        &cfg,
        &app,
        ExecMode::ConsumerPriority { window: 2 },
        HazardMode::Raw,
        &budget,
    )
    .unwrap();
    assert!(check_schedule(&app, &r.schedule).unwrap().is_match());
}

#[test]
fn exhausted_budgets_force_the_barrier_rung() {
    let cfg = GpuConfig::small();
    let app = chain_app(3, 8);
    let budget = AnalysisBudget::exhausted();
    let mut cache = AnalysisCache::for_budget(&budget);
    let jit = jit_analyze_app_budgeted(&cfg, &app, HazardMode::Raw, &budget, &mut cache);
    for k in &jit {
        assert_eq!(k.degradation.rung, DegradationRung::Barrier, "{}", k.name);
        assert_eq!(k.degradation.reason, DegradationReason::CoarseOverBudget);
        assert!(k.access.non_static);
    }
    // Graphs against a barrier kernel are fully connected, never explicit.
    for k in &jit[1..] {
        assert!(k.graph.is_fully_connected());
    }
    let r = try_run_app_budgeted(
        &cfg,
        &app,
        ExecMode::ConsumerPriority { window: 3 },
        HazardMode::Raw,
        &budget,
    )
    .unwrap();
    assert!(check_schedule(&app, &r.schedule).unwrap().is_match());
}

#[test]
fn non_static_kernels_report_the_barrier_rung() {
    // The indirect gather defeats value-range analysis outright (tainted
    // address), independent of any budget.
    let n = 64u64;
    let gather = Arc::new(
        parse_kernel(
            r#".entry gather(.param .u64 A, .param .u64 B) {
                 ld.param.u64 %rd1, [A];
                 ld.param.u64 %rd2, [B];
                 mov.u32 %r1, %ctaid.x;
                 mov.u32 %r2, %ntid.x;
                 mov.u32 %r3, %tid.x;
                 mad.lo.u32 %r4, %r1, %r2, %r3;
                 mul.wide.u32 %rd3, %r4, 4;
                 add.u64 %rd4, %rd1, %rd3;
                 ld.global.u32 %r5, [%rd4];
                 mul.wide.u32 %rd5, %r5, 4;
                 add.u64 %rd6, %rd1, %rd5;
                 ld.global.f32 %f1, [%rd6];
                 add.u64 %rd7, %rd2, %rd3;
                 st.global.f32 [%rd7], %f1;
                 ret;
               }"#,
        )
        .unwrap(),
    );
    let mut space = AddressSpace::new();
    let a = space.alloc(4 * n);
    let b = space.alloc(4 * n);
    let mut host_data = HashMap::new();
    host_data.insert(
        a.id,
        (0..n)
            .map(|i| f32::from_bits((n - 1 - i) as u32))
            .collect::<Vec<_>>(),
    );
    let app = Application {
        name: "gather".into(),
        space,
        calls: vec![
            ApiCall::MemcpyH2D {
                alloc: a.id,
                bytes: 4 * n,
            },
            ApiCall::KernelLaunch(Launch::new(
                gather,
                Dim3::x(2),
                Dim3::x(32),
                vec![ArgValue::Ptr(a.base), ArgValue::Ptr(b.base)],
            )),
        ],
        host_data,
    };
    let jit = jit_analyze_app(&GpuConfig::small(), &app, HazardMode::Raw);
    assert_eq!(jit[0].degradation.rung, DegradationRung::Barrier);
    assert_eq!(jit[0].degradation.reason, DegradationReason::NonStatic);
}

#[test]
fn trace_budget_exhaustion_disables_prelaunch() {
    let cfg = GpuConfig::small();
    let app = chain_app(3, 8);
    let budget = AnalysisBudget {
        trace_steps: 1,
        ..AnalysisBudget::default()
    };
    let mut cache = AnalysisCache::for_budget(&budget);
    let jit = jit_analyze_app_budgeted(&cfg, &app, HazardMode::Raw, &budget, &mut cache);
    for k in &jit {
        assert_eq!(
            k.degradation.rung,
            DegradationRung::PrelaunchOff,
            "{}",
            k.name
        );
        assert_eq!(k.degradation.reason, DegradationReason::TraceOverBudget);
        assert!(k.profile.duration > 0, "fallback profile must be usable");
    }
    // Pre-launch-off kernels still execute — just without run-ahead.
    let r = try_run_app_budgeted(
        &cfg,
        &app,
        ExecMode::ConsumerPriority { window: 3 },
        HazardMode::Raw,
        &budget,
    )
    .unwrap();
    assert!(check_schedule(&app, &r.schedule).unwrap().is_match());
    assert!(r
        .degradation
        .iter()
        .all(|(_, d)| d.rung == DegradationRung::PrelaunchOff));
}

#[test]
fn repeated_launches_hit_the_analysis_cache() {
    let cfg = GpuConfig::small();
    let app = repeated_app(4, 8);
    let budget = AnalysisBudget::default();
    let mut cache = AnalysisCache::for_budget(&budget);
    let jit = jit_analyze_app_budgeted(&cfg, &app, HazardMode::Raw, &budget, &mut cache);
    assert!(!jit[0].cache_hit, "first launch must be analyzed");
    assert!(
        jit[1..].iter().all(|k| k.cache_hit),
        "identical relaunches hit"
    );
    let s = cache.stats();
    assert_eq!((s.hits, s.misses, s.evictions), (3, 1, 0));
    // Cache hits reuse the precise analysis — no degradation involved.
    assert!(jit
        .iter()
        .all(|k| k.degradation.rung == DegradationRung::Precise));
    // The cached analysis drives the same schedule decisions, and the
    // report carries the hit/miss split.
    let r = run_analyzed(&cfg, &app, &jit, ExecMode::ConsumerPriority { window: 2 });
    assert_eq!(r.cache_hits, 3);
    assert_eq!(r.cache_misses, 1);
    assert!(check_schedule(&app, &r.schedule).unwrap().is_match());
}

#[test]
fn capacity_one_cache_evicts_deterministically() {
    let cfg = GpuConfig::small();
    // Alternating distinct launches: A→B, C→D, A→B, C→D.
    let specs: Vec<KernelSpec> = (0..4)
        .map(|i| KernelSpec {
            src_buf: if i % 2 == 0 { 0 } else { 2 },
            dst_buf: if i % 2 == 0 { 1 } else { 3 },
            shift: 0,
            tbs: 8,
        })
        .collect();
    let app = build_random_app(4, &specs);
    let budget = AnalysisBudget {
        cache_capacity: 1,
        ..AnalysisBudget::default()
    };
    let mut cache = AnalysisCache::for_budget(&budget);
    let jit = jit_analyze_app_budgeted(&cfg, &app, HazardMode::Raw, &budget, &mut cache);
    assert!(jit.iter().all(|k| !k.cache_hit), "capacity 1 thrashes");
    let s = cache.stats();
    assert_eq!((s.hits, s.misses, s.evictions), (0, 4, 3));
}

#[test]
fn coarse_analysis_over_approximates_precise_per_tb_sets() {
    // Soundness of the coarse rung: for every TB, the group-level sets
    // must contain the precise per-TB sets (degradation may only *add*
    // dependencies, never lose one).
    let covers = |sup: &RangeSet, sub: &RangeSet| -> bool {
        sub.ranges()
            .iter()
            .flat_map(|&(s, e)| (s..e).step_by(4))
            .all(|a| sup.contains(a))
    };
    check_cases(0xC0A25E, 32, |rng| {
        let tbs = rng.range_u32(1, 24);
        let shift = rng.range_u32(0, 70);
        let groups = rng.range_u32(1, 10);
        let n = tbs as u64 * 64;
        let mut space = AddressSpace::new();
        let a = space.alloc(4 * n);
        let b = space.alloc(4 * n);
        let launch = Launch::new(
            shift_kernel(),
            Dim3::x(tbs),
            Dim3::x(64),
            vec![
                ArgValue::Ptr(a.base),
                ArgValue::Ptr(b.base),
                ArgValue::U32(n as u32),
                ArgValue::U32(shift),
            ],
        );
        let mut fuel = u64::MAX;
        let precise = try_analyze_launch_fueled(&launch, &mut fuel)
            .expect("valid")
            .expect("fuel");
        let mut fuel = u64::MAX;
        let coarse = try_analyze_launch_grouped(&launch, groups, &mut fuel)
            .expect("valid")
            .expect("fuel");
        prop_ensure!(!precise.non_static && !coarse.non_static, "static kernel");
        prop_ensure!(
            coarse.per_tb.len() == precise.per_tb.len(),
            "same block count"
        );
        for (tb, (p, c)) in precise.per_tb.iter().zip(&coarse.per_tb).enumerate() {
            prop_ensure!(
                covers(&c.reads, &p.reads) && covers(&c.writes, &p.writes),
                "tb {tb} of {tbs} (shift {shift}, {groups} groups): \
                 coarse sets must cover precise sets"
            );
        }
        Ok(())
    });
}

#[test]
fn spill_pressure_shrinks_the_window_and_is_recorded() {
    // A 1-entry parent-counter buffer forces a writeback storm; with a
    // tiny spill threshold, admission backpressure must shrink the window
    // monotonically — and the run must stay correct throughout.
    let cfg = GpuConfig {
        spill_pressure_threshold: 8,
        ..GpuConfig::small()
    };
    let app = chain_app(8, 8);
    let jit = jit_analyze_app(&cfg, &app, HazardMode::Raw);
    let fault = FaultPlan {
        pcb_capacity: Some(1),
        ..FaultPlan::default()
    };
    let r = try_run_analyzed_faulty(
        &cfg,
        &app,
        &jit,
        ExecMode::ConsumerPriority { window: 4 },
        &fault,
    )
    .unwrap();
    assert!(
        !r.pressure_events.is_empty(),
        "spill storm must trigger backpressure"
    );
    let mut prev = 4u32;
    for ev in &r.pressure_events {
        assert!(ev.window_after < ev.window_before, "each event shrinks");
        assert_eq!(ev.window_before, prev, "events are contiguous");
        assert!(ev.window_after >= cfg.pressure_min_window);
        assert!(ev.spill_traffic >= cfg.spill_pressure_threshold);
        prev = ev.window_after;
    }
    assert!(check_schedule(&app, &r.schedule).unwrap().is_match());
    // Determinism: the same run shrinks at the same cycles.
    let r2 = try_run_analyzed_faulty(
        &cfg,
        &app,
        &jit,
        ExecMode::ConsumerPriority { window: 4 },
        &fault,
    )
    .unwrap();
    assert_eq!(r.pressure_events, r2.pressure_events);
}

#[test]
fn pressure_never_fires_without_spills() {
    let cfg = GpuConfig::small();
    let app = chain_app(4, 8);
    let r = try_run_app_budgeted(
        &cfg,
        &app,
        ExecMode::ConsumerPriority { window: 3 },
        HazardMode::Raw,
        &AnalysisBudget::default(),
    )
    .unwrap();
    assert!(r.pressure_events.is_empty());
}

#[test]
fn fault_injection_composes_with_budget_exhaustion() {
    // Every fault class × a budget that forces a degraded rung: the
    // guarded pipeline must still end in recovery or a typed error —
    // never a wrong accepted result or a panic.
    let cfg = GpuConfig::small();
    let app = chain_app(4, 8);
    for class in FaultClass::all() {
        let base_seed = 0xDE6_FA17 ^ ((class as u64) << 12);
        check_cases(base_seed, 4, |rng| {
            let budget = if rng.flip() {
                AnalysisBudget::exhausted()
            } else {
                AnalysisBudget {
                    trace_steps: 1,
                    ..AnalysisBudget::default()
                }
            };
            let mut cache = AnalysisCache::for_budget(&budget);
            let mut jit =
                jit_analyze_app_budgeted(&cfg, &app, HazardMode::Raw, &budget, &mut cache);
            let mut frng = FaultRng::new(rng.next_u64());
            let plan = if class.is_static() {
                let k = 1 + frng.below(jit.len() as u64 - 1) as usize;
                let applied = match class {
                    FaultClass::CorruptAccessSet => {
                        corrupt_access_set(&mut jit, k, HazardMode::Raw)
                    }
                    _ => corrupt_pattern(&mut jit, k),
                };
                if !applied {
                    // Degraded kernels can have no corruption site (barrier
                    // graphs carry no explicit metadata) — vacuously safe.
                    return Ok(());
                }
                FaultPlan::default()
            } else {
                match random_plan(class, &jit, &mut frng) {
                    Some(p) => p,
                    None => return Ok(()),
                }
            };
            if matches!(class, FaultClass::WorkerPanic) {
                // Panic injection is *supposed* to unwind — the serve layer
                // contains it with `catch_unwind`. Assert exactly that.
                let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    blockmaestro::try_run_app_faulty(
                        &cfg,
                        &app,
                        jit,
                        ExecMode::ConsumerPriority { window: 3 },
                        HazardMode::Raw,
                        &plan,
                    )
                }));
                prop_ensure!(res.is_err(), "WorkerPanic plan did not unwind");
                return Ok(());
            }
            match blockmaestro::try_run_app_faulty(
                &cfg,
                &app,
                jit,
                ExecMode::ConsumerPriority { window: 3 },
                HazardMode::Raw,
                &plan,
            ) {
                Ok(report) => {
                    let eq = check_schedule(&app, &report.schedule)
                        .map_err(|e| format!("replay failed: {e}"))?;
                    prop_ensure!(
                        eq.is_match(),
                        "{class:?} + {budget:?}: accepted run diverges ({eq})"
                    );
                    Ok(())
                }
                // Typed errors are an acceptable terminal state.
                Err(_typed) => Ok(()),
            }
        });
    }
}

#[test]
fn invalid_launch_degrades_instead_of_panicking() {
    // A launch with a missing argument is structurally invalid: the
    // infallible pipeline must carry it as an opaque prelaunch-off barrier
    // rather than dying.
    let mut space = AddressSpace::new();
    let a = space.alloc(4 * 64);
    let app = Application {
        name: "invalid".into(),
        space,
        // Built by hand: `Launch::new` itself asserts arity.
        calls: vec![ApiCall::KernelLaunch(Launch {
            kernel: shift_kernel(),
            grid: Dim3::x(1),
            block: Dim3::x(64),
            args: vec![ArgValue::Ptr(a.base)], // 3 of 4 args missing
        })],
        host_data: HashMap::new(),
    };
    let jit = jit_analyze_app(&GpuConfig::small(), &app, HazardMode::Raw);
    assert_eq!(jit.len(), 1);
    assert_eq!(jit[0].degradation.rung, DegradationRung::PrelaunchOff);
    assert_eq!(jit[0].degradation.reason, DegradationReason::InvalidLaunch);
    assert!(jit[0].access.non_static);
}
