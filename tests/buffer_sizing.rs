//! Validates the paper's §IV-C hardware-buffer sizing: 896 dependency-list
//! entries (one per concurrently-resident thread block) are sufficient for
//! every benchmark, because entries are only allocated for actively
//! executing TBs and released at completion.

use blockmaestro::hw::BUFFER_ENTRIES;
use blockmaestro::{run_app, ExecMode};
use bm_simt::GpuConfig;
use bm_workloads::{suite, Scale};

#[test]
fn dependency_list_buffer_never_exceeds_paper_sizing() {
    let cfg = GpuConfig::titan_x_pascal();
    for bench in suite() {
        let app = (bench.build)(Scale::Small);
        for mode in [
            ExecMode::ProducerPriority { window: 2 },
            ExecMode::ConsumerPriority { window: 4 },
        ] {
            let r = run_app(&cfg, &app, mode);
            assert!(
                r.dlb_high_water <= BUFFER_ENTRIES,
                "{} under {mode}: {} dependency-list entries > {BUFFER_ENTRIES}",
                bench.name,
                r.dlb_high_water
            );
        }
    }
}

#[test]
fn dlb_occupancy_tracks_resident_tbs() {
    // On the small 16-slot GPU, peak dependency-list occupancy equals the
    // number of resident TBs, never the full grid.
    let cfg = GpuConfig::small();
    let app = bm_workloads::hotspot::build(Scale::Small);
    let r = run_app(&cfg, &app, ExecMode::ProducerPriority { window: 2 });
    let slots = (cfg.num_sms * cfg.occupancy(64, 0).min(cfg.max_tbs_per_sm)) as usize;
    assert!(
        r.dlb_high_water <= slots,
        "dlb peak {} exceeds the {} resident-TB slots",
        r.dlb_high_water,
        slots
    );
    assert!(r.dlb_high_water > 0);
}

#[test]
fn full_scale_gaussian_respects_buffer_limits() {
    // The stress case: 510 kernels with up to 255 TBs each.
    let cfg = GpuConfig::titan_x_pascal();
    let app = bm_workloads::gaussian::build(Scale::Full);
    let r = run_app(&cfg, &app, ExecMode::ConsumerPriority { window: 4 });
    assert!(r.dlb_high_water <= BUFFER_ENTRIES);
}
