//! Generators shared by the end-to-end property suites (`random_apps`,
//! `degradation`): a parameterized shifted-map kernel and random
//! application construction over aliased buffers.

#![allow(dead_code)]

use bm_cmdq::{ApiCall, Application};
use bm_ptx::kernel::{ArgValue, Dim3, Launch};
use bm_ptx::mem::AddressSpace;
use bm_ptx::parser::parse_kernel;
use bm_testkit::Rng;
use std::collections::HashMap;
use std::sync::Arc;

/// A shifted map kernel: `OUT[i] = IN[clamp(i + shift)] + 1`, which lets
/// random shifts create 1-to-1, overlapped, and skewed dependency graphs.
pub fn shift_kernel() -> Arc<bm_ptx::kernel::Kernel> {
    Arc::new(
        parse_kernel(
            r#".entry shift(.param .u64 IN, .param .u64 OUT, .param .u32 n, .param .u32 s)
            {
              ld.param.u64 %rd1, [IN];
              ld.param.u64 %rd2, [OUT];
              ld.param.u32 %r9, [n];
              ld.param.u32 %r10, [s];
              mov.u32 %r1, %ctaid.x;
              mov.u32 %r2, %ntid.x;
              mov.u32 %r3, %tid.x;
              mad.lo.u32 %r4, %r1, %r2, %r3;
              setp.ge.u32 %p1, %r4, %r9;
              @%p1 bra $DONE;
              add.u32 %r5, %r4, %r10;
              sub.u32 %r6, %r9, 1;
              min.u32 %r5, %r5, %r6;
              mul.wide.u32 %rd3, %r5, 4;
              add.u64 %rd4, %rd1, %rd3;
              ld.global.f32 %f1, [%rd4];
              add.f32 %f2, %f1, 0f3F800000;
              mul.wide.u32 %rd5, %r4, 4;
              add.u64 %rd6, %rd2, %rd5;
              st.global.f32 [%rd6], %f2;
            $DONE:
              ret;
            }"#,
        )
        .unwrap(),
    )
}

/// One randomly-drawn kernel launch of [`shift_kernel`].
#[derive(Debug, Clone)]
pub struct KernelSpec {
    pub src_buf: usize,
    pub dst_buf: usize,
    pub shift: u32,
    pub tbs: u32,
}

/// Builds an application launching [`shift_kernel`] once per spec over
/// `n_buffers` shared buffers (buffer 0 is host-initialized).
pub fn build_random_app(n_buffers: usize, specs: &[KernelSpec]) -> Application {
    let max_tbs = specs.iter().map(|s| s.tbs).max().unwrap_or(1) as u64;
    let n = max_tbs * 64;
    let mut space = AddressSpace::new();
    let bufs: Vec<_> = (0..n_buffers).map(|_| space.alloc(4 * n)).collect();
    let k = shift_kernel();
    let mut host_data = HashMap::new();
    host_data.insert(
        bufs[0].id,
        (0..n).map(|i| (i % 97) as f32).collect::<Vec<_>>(),
    );
    let mut calls = vec![ApiCall::MemcpyH2D {
        alloc: bufs[0].id,
        bytes: 4 * n,
    }];
    for s in specs {
        let sz = s.tbs as u64 * 64;
        calls.push(ApiCall::KernelLaunch(Launch::new(
            k.clone(),
            Dim3::x(s.tbs),
            Dim3::x(64),
            vec![
                ArgValue::Ptr(bufs[s.src_buf].base),
                ArgValue::Ptr(bufs[s.dst_buf].base),
                ArgValue::U32(sz as u32),
                ArgValue::U32(s.shift),
            ],
        )));
    }
    Application {
        name: "random".into(),
        space,
        calls,
        host_data,
    }
}

/// Draws one random [`KernelSpec`].
pub fn gen_spec(rng: &mut Rng, n_buffers: usize) -> KernelSpec {
    KernelSpec {
        src_buf: rng.range_usize(0, n_buffers),
        dst_buf: rng.range_usize(0, n_buffers),
        shift: rng.range_u32(0, 70),
        tbs: rng.range_u32(1, 12),
    }
}

/// With RAW-only tracking, a WAR hazard between kernels (a later kernel
/// overwriting a buffer an earlier kernel reads) is only safe when it also
/// carries a RAW chain; random apps can violate that, so paper-faithful
/// Raw-mode checks are restricted to WAR-free spec lists.
pub fn has_war_hazard(specs: &[KernelSpec]) -> bool {
    for i in 0..specs.len() {
        for j in i + 1..specs.len() {
            if specs[j].dst_buf == specs[i].src_buf {
                return true;
            }
        }
    }
    false
}
