//! Behavioral integration tests: quantitative properties the engine must
//! exhibit across the suite (launch-overhead accounting, overlap of
//! independent kernels, window monotonicity, stall reduction, overhead
//! bounds, reordering validity).

use blockmaestro::{jit_analyze_app, run_analyzed, run_app, run_app_with, ExecMode};
use bm_cmdq::{is_valid_order, reorder_for_prelaunch};
use bm_depgraph::HazardMode;
use bm_simt::stats::percentile;
use bm_simt::GpuConfig;
use bm_workloads::{bicg, pathfinder, suite, Scale};

#[test]
fn baseline_pays_one_launch_per_kernel() {
    // PATH has 5 equal-shape kernels: the baseline's kernel region must
    // exceed the ideal baseline's by ~5 launch overheads.
    let cfg = GpuConfig::titan_x_pascal();
    let app = pathfinder::build(Scale::Small);
    let base = run_app(&cfg, &app, ExecMode::Baseline);
    let ideal = run_app(&cfg, &app, ExecMode::IdealBaseline);
    let diff = base.kernel_region_cycles - ideal.kernel_region_cycles;
    let k = app.num_kernels() as u64;
    let expect = k * cfg.kernel_launch_cycles;
    assert!(
        diff >= expect - cfg.kernel_launch_cycles
            && diff <= expect + k * cfg.launch_api_cycles + cfg.kernel_launch_cycles,
        "launch overhead accounting off: diff={diff}, expected ≈{expect}"
    );
}

#[test]
fn independent_kernels_overlap_under_blockmaestro() {
    // BICG's two kernels are data-independent; BlockMaestro must overlap
    // them so that the kernel region is much less than the serialized sum.
    let cfg = GpuConfig::titan_x_pascal();
    let app = bicg::build(Scale::Full);
    let jit = jit_analyze_app(&cfg, &app, HazardMode::Raw);
    assert!(jit[1].graph.is_independent());
    let base = run_analyzed(&cfg, &app, &jit, ExecMode::Baseline);
    let bm = run_analyzed(&cfg, &app, &jit, ExecMode::ProducerPriority { window: 2 });
    // The kernels are imbalanced (the row-dot kernel is uncoalesced, the
    // column kernel is not), so overlap saves roughly the shorter kernel's
    // duration: the BlockMaestro region must be at most the longer
    // kernel's standalone span plus launch overhead and slack.
    let spans: Vec<u64> = jit
        .iter()
        .map(|k| {
            let waves = k
                .profile
                .n_tbs
                .div_ceil(cfg.total_tb_slots(k.profile.threads, 0).max(1));
            waves as u64 * k.profile.duration
        })
        .collect();
    let longest = *spans.iter().max().unwrap();
    let serial_sum: u64 = spans.iter().sum();
    assert!(bm.kernel_region_cycles < base.kernel_region_cycles);
    assert!(
        bm.kernel_region_cycles
            <= longest
                + 2 * cfg.kernel_launch_cycles
                + base.kernel_region_cycles / 10
                + (base.kernel_region_cycles - serial_sum.min(base.kernel_region_cycles)),
        "overlap too weak: region {} vs longest kernel {}",
        bm.kernel_region_cycles,
        longest
    );
    // And the saving is at least most of the shorter kernel.
    let shorter = *spans.iter().min().unwrap();
    assert!(
        base.kernel_region_cycles - bm.kernel_region_cycles >= shorter / 2,
        "saved {} but shorter kernel is {}",
        base.kernel_region_cycles - bm.kernel_region_cycles,
        shorter
    );
}

#[test]
fn deeper_windows_never_hurt_much() {
    // Speedup should be (weakly) monotone in window depth, up to a small
    // scheduling-noise tolerance.
    let cfg = GpuConfig::titan_x_pascal();
    for bench in suite() {
        let app = (bench.build)(Scale::Small);
        let jit = jit_analyze_app(&cfg, &app, HazardMode::Raw);
        let t2 = run_analyzed(&cfg, &app, &jit, ExecMode::ConsumerPriority { window: 2 })
            .total_cycles as f64;
        let t4 = run_analyzed(&cfg, &app, &jit, ExecMode::ConsumerPriority { window: 4 })
            .total_cycles as f64;
        assert!(
            t4 <= t2 * 1.10,
            "{}: window 4 ({t4}) much slower than window 2 ({t2})",
            bench.name
        );
    }
}

#[test]
fn blockmaestro_never_slower_than_baseline() {
    let cfg = GpuConfig::titan_x_pascal();
    for bench in suite() {
        let app = (bench.build)(Scale::Small);
        let jit = jit_analyze_app(&cfg, &app, HazardMode::Raw);
        let base = run_analyzed(&cfg, &app, &jit, ExecMode::Baseline).total_cycles as f64;
        for mode in [
            ExecMode::PreLaunch { window: 2 },
            ExecMode::ProducerPriority { window: 2 },
            ExecMode::ConsumerPriority { window: 3 },
        ] {
            let t = run_analyzed(&cfg, &app, &jit, mode).total_cycles as f64;
            assert!(
                t <= base * 1.02,
                "{} under {mode}: {t} vs baseline {base}",
                bench.name
            );
        }
    }
}

#[test]
fn stalls_shrink_under_fine_grain_resolution() {
    let cfg = GpuConfig::titan_x_pascal();
    let mut improved = 0;
    let mut total = 0;
    for bench in suite() {
        let app = (bench.build)(Scale::Small);
        let base = run_app(&cfg, &app, ExecMode::Baseline);
        let bm = run_app(&cfg, &app, ExecMode::ProducerPriority { window: 2 });
        let med = |v: &[f64]| {
            let mut s = v.to_vec();
            s.sort_by(|a, b| a.partial_cmp(b).unwrap());
            percentile(&s, 50.0)
        };
        total += 1;
        if med(&bm.stalls_normalized) <= med(&base.stalls_normalized) + 1e-9 {
            improved += 1;
        }
    }
    assert!(
        improved >= total - 1,
        "stall medians should not regress: {improved}/{total}"
    );
}

#[test]
fn hardware_overhead_stays_small() {
    let cfg = GpuConfig::titan_x_pascal();
    for bench in suite() {
        let app = (bench.build)(Scale::Small);
        let r = run_app(&cfg, &app, ExecMode::ConsumerPriority { window: 4 });
        assert!(
            r.mem_overhead_fraction() < 0.08,
            "{}: overhead {:.2}% too large",
            bench.name,
            100.0 * r.mem_overhead_fraction()
        );
        assert!(r.storage_encoded <= r.storage_plain.max(4 * r.num_kernels as u64));
    }
}

#[test]
fn reordering_is_valid_for_every_app() {
    for bench in suite() {
        for scale in [Scale::Small, Scale::Full] {
            let app = (bench.build)(scale);
            let r = reorder_for_prelaunch(&app);
            assert!(
                is_valid_order(&app, &r.order),
                "{} at {scale:?}",
                bench.name
            );
            // Kernel relative order is preserved (graphs stay consecutive).
            let kernels_before: Vec<String> = app
                .launches()
                .iter()
                .map(|l| l.kernel.name.clone())
                .collect();
            let reordered = r.apply(&app);
            let kernels_after: Vec<String> = reordered
                .iter()
                .filter_map(|c| match c {
                    bm_cmdq::ApiCall::KernelLaunch(l) => Some(l.kernel.name.clone()),
                    _ => None,
                })
                .collect();
            assert_eq!(kernels_before, kernels_after, "{}", bench.name);
        }
    }
}

#[test]
fn hazard_all_is_never_less_conservative() {
    // Tracking more hazards can only add edges, so execution can only get
    // slower (or equal).
    let cfg = GpuConfig::titan_x_pascal();
    for bench in suite() {
        let app = (bench.build)(Scale::Small);
        let raw = run_app_with(
            &cfg,
            &app,
            ExecMode::ConsumerPriority { window: 3 },
            HazardMode::Raw,
        );
        let all = run_app_with(
            &cfg,
            &app,
            ExecMode::ConsumerPriority { window: 3 },
            HazardMode::All,
        );
        assert!(
            all.kernel_region_cycles as f64 >= raw.kernel_region_cycles as f64 * 0.999,
            "{}: HazardMode::All faster than Raw ({} vs {})",
            bench.name,
            all.kernel_region_cycles,
            raw.kernel_region_cycles
        );
    }
}
