//! Degenerate-input robustness: single-thread launches, one-TB grids,
//! kernel-free applications, and extreme windows must not panic or
//! deadlock anywhere in the pipeline.

use blockmaestro::{check_schedule, run_app, ExecMode};
use bm_cmdq::{ApiCall, Application};
use bm_ptx::absint::analyze_launch;
use bm_ptx::kernel::{ArgValue, Dim3, Launch};
use bm_ptx::mem::AddressSpace;
use bm_ptx::parser::parse_kernel;
use bm_simt::GpuConfig;
use std::collections::HashMap;
use std::sync::Arc;

fn one_store_kernel() -> Arc<bm_ptx::kernel::Kernel> {
    Arc::new(
        parse_kernel(
            r#".entry one(.param .u64 A) {
                 ld.param.u64 %rd1, [A];
                 mov.u32 %r1, %tid.x;
                 mul.wide.u32 %rd2, %r1, 4;
                 add.u64 %rd3, %rd1, %rd2;
                 st.global.f32 [%rd3], 0f3F800000;
                 ret;
               }"#,
        )
        .unwrap(),
    )
}

#[test]
fn single_thread_single_block_launch() {
    let mut space = AddressSpace::new();
    let a = space.alloc(4);
    let launch = Launch::new(
        one_store_kernel(),
        Dim3::x(1),
        Dim3::x(1),
        vec![ArgValue::Ptr(a.base)],
    );
    let acc = analyze_launch(&launch);
    assert!(!acc.non_static);
    assert_eq!(acc.per_tb.len(), 1);
    assert_eq!(acc.per_tb[0].writes.total_bytes(), 4);
    let app = Application {
        name: "tiny".into(),
        space,
        calls: vec![ApiCall::KernelLaunch(launch)],
        host_data: HashMap::new(),
    };
    let cfg = GpuConfig::titan_x_pascal();
    for mode in [ExecMode::Baseline, ExecMode::ConsumerPriority { window: 4 }] {
        let r = run_app(&cfg, &app, mode);
        assert_eq!(r.schedule.len(), 1);
        assert!(check_schedule(&app, &r.schedule).unwrap().is_match());
    }
}

#[test]
fn application_without_kernels() {
    let mut space = AddressSpace::new();
    let a = space.alloc(64);
    let app = Application {
        name: "nokernels".into(),
        space,
        calls: vec![
            ApiCall::Malloc { alloc: a.id },
            ApiCall::MemcpyH2D { alloc: a.id, bytes: 64 },
            ApiCall::MemcpyD2H { alloc: a.id, bytes: 64 },
        ],
        host_data: HashMap::new(),
    };
    let cfg = GpuConfig::titan_x_pascal();
    let r = run_app(&cfg, &app, ExecMode::Baseline);
    assert_eq!(r.num_kernels, 0);
    assert!(r.schedule.is_empty());
    assert!(check_schedule(&app, &r.schedule).unwrap().is_match());
}

#[test]
fn window_larger_than_kernel_count() {
    let mut space = AddressSpace::new();
    let a = space.alloc(256);
    let k = one_store_kernel();
    let app = Application {
        name: "widewindow".into(),
        space,
        calls: vec![
            ApiCall::KernelLaunch(Launch::new(
                k.clone(),
                Dim3::x(1),
                Dim3::x(32),
                vec![ArgValue::Ptr(a.base)],
            )),
            ApiCall::KernelLaunch(Launch::new(
                k,
                Dim3::x(1),
                Dim3::x(32),
                vec![ArgValue::Ptr(a.base)],
            )),
        ],
        host_data: HashMap::new(),
    };
    let cfg = GpuConfig::titan_x_pascal();
    let r = run_app(&cfg, &app, ExecMode::ConsumerPriority { window: 64 });
    assert_eq!(r.schedule.len(), 2);
    assert!(check_schedule(&app, &r.schedule).unwrap().is_match());
}

#[test]
fn block_larger_than_data_guards_out_cleanly() {
    // 1024-thread block storing only via tid < grid extent: the kernel
    // writes 1024 lanes into a 1024-element buffer exactly; shrinking the
    // buffer is a functional-model bug and must panic loudly, so size it
    // exactly and check the boundary write.
    let mut space = AddressSpace::new();
    let a = space.alloc(4 * 1024);
    let launch = Launch::new(
        one_store_kernel(),
        Dim3::x(1),
        Dim3::x(1024),
        vec![ArgValue::Ptr(a.base)],
    );
    let mut mem = bm_ptx::mem::GlobalMem::for_space(&space);
    bm_ptx::interp::execute_launch(&launch, &mut mem).unwrap();
    assert_eq!(mem.read_f32(a.base + 4 * 1023), 1.0);
}
