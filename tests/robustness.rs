//! Degenerate-input robustness: single-thread launches, one-TB grids,
//! kernel-free applications, and extreme windows must not panic or
//! deadlock anywhere in the pipeline.

use blockmaestro::{check_schedule, run_app, ExecMode};
use bm_cmdq::{ApiCall, Application};
use bm_ptx::absint::analyze_launch;
use bm_ptx::kernel::{ArgValue, Dim3, Launch};
use bm_ptx::mem::AddressSpace;
use bm_ptx::parser::parse_kernel;
use bm_simt::GpuConfig;
use std::collections::HashMap;
use std::sync::Arc;

fn one_store_kernel() -> Arc<bm_ptx::kernel::Kernel> {
    Arc::new(
        parse_kernel(
            r#".entry one(.param .u64 A) {
                 ld.param.u64 %rd1, [A];
                 mov.u32 %r1, %tid.x;
                 mul.wide.u32 %rd2, %r1, 4;
                 add.u64 %rd3, %rd1, %rd2;
                 st.global.f32 [%rd3], 0f3F800000;
                 ret;
               }"#,
        )
        .unwrap(),
    )
}

#[test]
fn single_thread_single_block_launch() {
    let mut space = AddressSpace::new();
    let a = space.alloc(4);
    let launch = Launch::new(
        one_store_kernel(),
        Dim3::x(1),
        Dim3::x(1),
        vec![ArgValue::Ptr(a.base)],
    );
    let acc = analyze_launch(&launch);
    assert!(!acc.non_static);
    assert_eq!(acc.per_tb.len(), 1);
    assert_eq!(acc.per_tb[0].writes.total_bytes(), 4);
    let app = Application {
        name: "tiny".into(),
        space,
        calls: vec![ApiCall::KernelLaunch(launch)],
        host_data: HashMap::new(),
    };
    let cfg = GpuConfig::titan_x_pascal();
    for mode in [ExecMode::Baseline, ExecMode::ConsumerPriority { window: 4 }] {
        let r = run_app(&cfg, &app, mode);
        assert_eq!(r.schedule.len(), 1);
        assert!(check_schedule(&app, &r.schedule).unwrap().is_match());
    }
}

#[test]
fn application_without_kernels() {
    let mut space = AddressSpace::new();
    let a = space.alloc(64);
    let app = Application {
        name: "nokernels".into(),
        space,
        calls: vec![
            ApiCall::Malloc { alloc: a.id },
            ApiCall::MemcpyH2D {
                alloc: a.id,
                bytes: 64,
            },
            ApiCall::MemcpyD2H {
                alloc: a.id,
                bytes: 64,
            },
        ],
        host_data: HashMap::new(),
    };
    let cfg = GpuConfig::titan_x_pascal();
    let r = run_app(&cfg, &app, ExecMode::Baseline);
    assert_eq!(r.num_kernels, 0);
    assert!(r.schedule.is_empty());
    assert!(check_schedule(&app, &r.schedule).unwrap().is_match());
}

#[test]
fn window_larger_than_kernel_count() {
    let mut space = AddressSpace::new();
    let a = space.alloc(256);
    let k = one_store_kernel();
    let app = Application {
        name: "widewindow".into(),
        space,
        calls: vec![
            ApiCall::KernelLaunch(Launch::new(
                k.clone(),
                Dim3::x(1),
                Dim3::x(32),
                vec![ArgValue::Ptr(a.base)],
            )),
            ApiCall::KernelLaunch(Launch::new(
                k,
                Dim3::x(1),
                Dim3::x(32),
                vec![ArgValue::Ptr(a.base)],
            )),
        ],
        host_data: HashMap::new(),
    };
    let cfg = GpuConfig::titan_x_pascal();
    let r = run_app(&cfg, &app, ExecMode::ConsumerPriority { window: 64 });
    assert_eq!(r.schedule.len(), 2);
    assert!(check_schedule(&app, &r.schedule).unwrap().is_match());
}

/// Every execution mode the engine supports, including degenerate window
/// values that must clamp rather than wedge the scheduler.
fn all_modes() -> Vec<ExecMode> {
    vec![
        ExecMode::Baseline,
        ExecMode::IdealBaseline,
        ExecMode::GraphLaunch,
        ExecMode::PreLaunch { window: 0 },
        ExecMode::PreLaunch { window: 2 },
        ExecMode::ProducerPriority { window: 0 },
        ExecMode::ProducerPriority { window: 2 },
        ExecMode::ConsumerPriority { window: 0 },
        ExecMode::ConsumerPriority { window: 3 },
    ]
}

#[test]
fn zero_tb_grid_between_real_kernels() {
    // A 0-block launch sandwiched between two real kernels: the empty
    // kernel contributes no TBs and no dependencies, and the outer RAW
    // chain must still serialize correctly in every mode.
    let mut space = AddressSpace::new();
    let a = space.alloc(4 * 32);
    let k = one_store_kernel();
    let app = Application {
        name: "zero-tb".into(),
        space,
        calls: vec![
            ApiCall::KernelLaunch(Launch::new(
                k.clone(),
                Dim3::x(1),
                Dim3::x(32),
                vec![ArgValue::Ptr(a.base)],
            )),
            ApiCall::KernelLaunch(Launch::new(
                k.clone(),
                Dim3::x(0),
                Dim3::x(32),
                vec![ArgValue::Ptr(a.base)],
            )),
            ApiCall::KernelLaunch(Launch::new(
                k,
                Dim3::x(1),
                Dim3::x(32),
                vec![ArgValue::Ptr(a.base)],
            )),
        ],
        host_data: HashMap::new(),
    };
    let cfg = GpuConfig::titan_x_pascal();
    for mode in all_modes() {
        let r = run_app(&cfg, &app, mode);
        assert_eq!(r.schedule.len(), 2, "{mode}: only the real TBs execute");
        let eq = check_schedule(&app, &r.schedule).unwrap();
        assert!(eq.is_match(), "{mode}: {eq}");
    }
}

#[test]
fn window_zero_behaves_as_window_one() {
    let mut space = AddressSpace::new();
    let a = space.alloc(4 * 64);
    let k = one_store_kernel();
    let app = Application {
        name: "window-zero".into(),
        space,
        calls: (0..3)
            .map(|_| {
                ApiCall::KernelLaunch(Launch::new(
                    k.clone(),
                    Dim3::x(1),
                    Dim3::x(64),
                    vec![ArgValue::Ptr(a.base)],
                ))
            })
            .collect(),
        host_data: HashMap::new(),
    };
    let cfg = GpuConfig::titan_x_pascal();
    let makes: [fn(u32) -> ExecMode; 3] = [
        |w| ExecMode::PreLaunch { window: w },
        |w| ExecMode::ProducerPriority { window: w },
        |w| ExecMode::ConsumerPriority { window: w },
    ];
    for make in makes {
        let zero = run_app(&cfg, &app, make(0));
        let one = run_app(&cfg, &app, make(1));
        assert!(check_schedule(&app, &zero.schedule).unwrap().is_match());
        assert_eq!(
            zero.kernel_region_cycles, one.kernel_region_cycles,
            "window 0 must clamp to window 1"
        );
    }
}

#[test]
fn all_non_static_kernels_fall_back_and_stay_correct() {
    // Two chained indirect-gather kernels: analysis cannot bound either
    // kernel's accesses, so both are non-static and every inter-kernel
    // graph degrades to a fully-connected barrier — which must still
    // produce the serialized memory image in every mode.
    let n = 64u64;
    let gather = Arc::new(
        parse_kernel(
            r#".entry gather(.param .u64 A, .param .u64 B) {
                 ld.param.u64 %rd1, [A];
                 ld.param.u64 %rd2, [B];
                 mov.u32 %r1, %ctaid.x;
                 mov.u32 %r2, %ntid.x;
                 mov.u32 %r3, %tid.x;
                 mad.lo.u32 %r4, %r1, %r2, %r3;
                 mul.wide.u32 %rd3, %r4, 4;
                 add.u64 %rd4, %rd1, %rd3;
                 ld.global.u32 %r5, [%rd4];
                 mul.wide.u32 %rd5, %r5, 4;
                 add.u64 %rd6, %rd1, %rd5;
                 ld.global.f32 %f1, [%rd6];
                 add.u64 %rd7, %rd2, %rd3;
                 st.global.f32 [%rd7], %f1;
                 ret;
               }"#,
        )
        .unwrap(),
    );
    let mut space = AddressSpace::new();
    let a = space.alloc(4 * n);
    let b = space.alloc(4 * n);
    let c = space.alloc(4 * n);
    // A holds the reversal permutation as raw u32 bit patterns, so
    // B[i] = A[A[i]] = bits(i): indices stay in-bounds for the second hop.
    let mut host_data = HashMap::new();
    host_data.insert(
        a.id,
        (0..n)
            .map(|i| f32::from_bits((n - 1 - i) as u32))
            .collect::<Vec<_>>(),
    );
    let app = Application {
        name: "all-non-static".into(),
        space,
        calls: vec![
            ApiCall::MemcpyH2D {
                alloc: a.id,
                bytes: 4 * n,
            },
            ApiCall::KernelLaunch(Launch::new(
                gather.clone(),
                Dim3::x(2),
                Dim3::x(32),
                vec![ArgValue::Ptr(a.base), ArgValue::Ptr(b.base)],
            )),
            ApiCall::KernelLaunch(Launch::new(
                gather,
                Dim3::x(2),
                Dim3::x(32),
                vec![ArgValue::Ptr(b.base), ArgValue::Ptr(c.base)],
            )),
        ],
        host_data,
    };
    let jit = blockmaestro::jit_analyze_app(
        &GpuConfig::titan_x_pascal(),
        &app,
        bm_depgraph::HazardMode::Raw,
    );
    assert!(jit.iter().all(|k| k.access.non_static));
    let cfg = GpuConfig::titan_x_pascal();
    for mode in all_modes() {
        let r = run_app(&cfg, &app, mode);
        let eq = check_schedule(&app, &r.schedule).unwrap();
        assert!(eq.is_match(), "{mode}: {eq}");
    }
}

#[test]
fn parent_degree_above_counter_max_degrades_and_stays_correct() {
    // 72 producer TBs each feed every consumer TB (stride-32 reads touch
    // all 72 producer slots): degree 72 > the 6-bit counter max of 63, so
    // the graph must degrade to fully-connected and still run correctly.
    let tbs = 72u32;
    let n = tbs as u64 * 32;
    let writer = Arc::new(
        parse_kernel(
            r#".entry w(.param .u64 A) {
                 ld.param.u64 %rd1, [A];
                 mov.u32 %r1, %ctaid.x;
                 mov.u32 %r2, %ntid.x;
                 mov.u32 %r3, %tid.x;
                 mad.lo.u32 %r4, %r1, %r2, %r3;
                 mul.wide.u32 %rd2, %r4, 4;
                 add.u64 %rd3, %rd1, %rd2;
                 st.global.f32 [%rd3], 0f3F800000;
                 ret;
               }"#,
        )
        .unwrap(),
    );
    let reader = Arc::new(
        parse_kernel(
            r#".entry r(.param .u64 A, .param .u64 B, .param .u32 n) {
                 ld.param.u64 %rd1, [A];
                 ld.param.u64 %rd2, [B];
                 ld.param.u32 %r9, [n];
                 mov.u32 %r1, 0;
                 mov.f32 %f1, 0f00000000;
               $TOP:
                 setp.ge.u32 %p1, %r1, %r9;
                 @%p1 bra $OUT;
                 mul.wide.u32 %rd3, %r1, 4;
                 add.u64 %rd4, %rd1, %rd3;
                 ld.global.f32 %f2, [%rd4];
                 add.f32 %f1, %f1, %f2;
                 add.u32 %r1, %r1, 32;
                 bra $TOP;
               $OUT:
                 mov.u32 %r5, %ctaid.x;
                 mov.u32 %r6, %ntid.x;
                 mov.u32 %r7, %tid.x;
                 mad.lo.u32 %r8, %r5, %r6, %r7;
                 mul.wide.u32 %rd5, %r8, 4;
                 add.u64 %rd6, %rd2, %rd5;
                 st.global.f32 [%rd6], %f1;
                 ret;
               }"#,
        )
        .unwrap(),
    );
    let mut space = AddressSpace::new();
    let a = space.alloc(4 * n);
    let b = space.alloc(4 * n);
    let app = Application {
        name: "high-degree".into(),
        space,
        calls: vec![
            ApiCall::KernelLaunch(Launch::new(
                writer,
                Dim3::x(tbs),
                Dim3::x(32),
                vec![ArgValue::Ptr(a.base)],
            )),
            ApiCall::KernelLaunch(Launch::new(
                reader,
                Dim3::x(tbs),
                Dim3::x(32),
                vec![
                    ArgValue::Ptr(a.base),
                    ArgValue::Ptr(b.base),
                    ArgValue::U32(n as u32),
                ],
            )),
        ],
        host_data: HashMap::new(),
    };
    let cfg = GpuConfig::titan_x_pascal();
    for mode in all_modes() {
        let r = run_app(&cfg, &app, mode);
        assert_eq!(r.schedule.len(), 2 * tbs as usize, "{mode}");
        let eq = check_schedule(&app, &r.schedule).unwrap();
        assert!(eq.is_match(), "{mode}: {eq}");
    }
}

#[test]
fn block_larger_than_data_guards_out_cleanly() {
    // 1024-thread block storing only via tid < grid extent: the kernel
    // writes 1024 lanes into a 1024-element buffer exactly; shrinking the
    // buffer is a functional-model bug and must panic loudly, so size it
    // exactly and check the boundary write.
    let mut space = AddressSpace::new();
    let a = space.alloc(4 * 1024);
    let launch = Launch::new(
        one_store_kernel(),
        Dim3::x(1),
        Dim3::x(1024),
        vec![ArgValue::Ptr(a.base)],
    );
    let mut mem = bm_ptx::mem::GlobalMem::for_space(&space);
    bm_ptx::interp::execute_launch(&launch, &mut mem).unwrap();
    assert_eq!(mem.read_f32(a.base + 4 * 1023), 1.0);
}
