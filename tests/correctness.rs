//! End-to-end architectural-invisibility tests: for every benchmark and
//! every execution mode, the thread-block schedule BlockMaestro produces
//! must compute exactly the same memory image as serialized execution.

use blockmaestro::{check_no_races, check_schedule, run_app, run_app_with, ExecMode};
use bm_depgraph::HazardMode;
use bm_simt::GpuConfig;
use bm_workloads::{suite, Scale};

fn all_modes() -> Vec<ExecMode> {
    let mut v = vec![ExecMode::Baseline];
    v.extend(ExecMode::figure9_variants());
    v
}

#[test]
fn every_app_every_mode_is_architecturally_invisible() {
    let cfg = GpuConfig::titan_x_pascal();
    for bench in suite() {
        let app = (bench.build)(Scale::Small);
        for mode in all_modes() {
            let report = run_app(&cfg, &app, mode);
            let eq = check_schedule(&app, &report.schedule)
                .unwrap_or_else(|e| panic!("{} {mode}: exec error {e}", bench.name));
            assert!(
                eq.is_match(),
                "{} under {mode} diverged from serialized execution",
                bench.name
            );
        }
    }
}

#[test]
fn hazard_mode_all_is_also_invisible() {
    let cfg = GpuConfig::titan_x_pascal();
    for bench in suite() {
        let app = (bench.build)(Scale::Small);
        let report = run_app_with(
            &cfg,
            &app,
            ExecMode::ConsumerPriority { window: 4 },
            HazardMode::All,
        );
        let eq = check_schedule(&app, &report.schedule).unwrap();
        assert!(eq.is_match(), "{} (HazardMode::All) diverged", bench.name);
    }
}

#[test]
fn schedules_are_race_free() {
    // Stronger than replay equivalence: no two time-overlapping thread
    // blocks of different kernels may touch conflicting bytes. The RAW
    // tracking of the paper suffices for the whole suite because every
    // cross-kernel WAR/WAW is covered by a RAW chain or a skip gate.
    let cfg = GpuConfig::titan_x_pascal();
    for bench in suite() {
        let app = (bench.build)(Scale::Small);
        for mode in [
            ExecMode::ProducerPriority { window: 2 },
            ExecMode::ConsumerPriority { window: 4 },
        ] {
            let report = run_app(&cfg, &app, mode);
            let races = check_no_races(&app, &report.schedule).unwrap();
            assert!(
                races.is_empty(),
                "{} under {mode}: {} races, first {:?}",
                bench.name,
                races.len(),
                races.first()
            );
        }
    }
}

#[test]
fn schedules_cover_every_thread_block_exactly_once() {
    let cfg = GpuConfig::titan_x_pascal();
    for bench in suite() {
        let app = (bench.build)(Scale::Small);
        let total: u64 = app.launches().iter().map(|l| l.num_blocks() as u64).sum();
        for mode in [ExecMode::Baseline, ExecMode::ConsumerPriority { window: 3 }] {
            let report = run_app(&cfg, &app, mode);
            assert_eq!(
                report.schedule.len() as u64,
                total,
                "{} {mode}: schedule length",
                bench.name
            );
            let mut seen: Vec<(u32, u32)> = report
                .schedule
                .iter()
                .map(|(k, _, _)| (k.kernel_seq, k.tb))
                .collect();
            seen.sort_unstable();
            seen.dedup();
            assert_eq!(
                seen.len() as u64,
                total,
                "{} {mode}: unique TBs",
                bench.name
            );
        }
    }
}
