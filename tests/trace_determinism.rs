//! The tracing subsystem's determinism contract (DESIGN.md §9).
//!
//! Two halves:
//!
//! 1. **Inertness** — attaching a recording tracer must not change the
//!    simulation. Traced and untraced runs of every [`ExecMode`] produce
//!    bit-identical [`RunReport`]s, through both the raw engine entry and
//!    the guarded pipeline.
//! 2. **Reproducibility** — two traced runs of the same application emit
//!    identical event streams, counters, and Chrome-trace exports. The
//!    subsystem stamps events with virtual clocks only (cycles, analysis
//!    ticks, queue positions), so there is no wall-clock jitter to leak.

mod common;

use blockmaestro::{run_app_with, run_app_with_tracer, try_run_app_with, try_run_app_with_tracer};
use blockmaestro::{ExecMode, RunReport};
use bm_depgraph::HazardMode;
use bm_simt::GpuConfig;
use bm_testkit::Rng;
use bm_trace::{export_chrome_trace, RecordingTracer, TraceEvent};
use common::{build_random_app, gen_spec};

fn all_modes() -> Vec<ExecMode> {
    vec![
        ExecMode::Baseline,
        ExecMode::IdealBaseline,
        ExecMode::GraphLaunch,
        ExecMode::PreLaunch { window: 3 },
        ExecMode::ProducerPriority { window: 3 },
        ExecMode::ConsumerPriority { window: 3 },
    ]
}

fn random_app(seed: u64) -> bm_cmdq::Application {
    let mut rng = Rng::new(seed);
    let n_buffers = rng.range_usize(3, 6);
    let n_kernels = rng.range_usize(3, 8);
    let specs: Vec<_> = (0..n_kernels)
        .map(|_| gen_spec(&mut rng, n_buffers))
        .collect();
    build_random_app(n_buffers, &specs)
}

fn traced_run(
    cfg: &GpuConfig,
    app: &bm_cmdq::Application,
    mode: ExecMode,
) -> (RunReport, Vec<TraceEvent>) {
    let tracer = RecordingTracer::new();
    let report = run_app_with_tracer(cfg, app, mode, HazardMode::Raw, &tracer);
    (report, tracer.events())
}

#[test]
fn traced_and_untraced_reports_bit_identical_all_modes() {
    let cfg = GpuConfig::small();
    for seed in [7, 1234, 998877] {
        let app = random_app(seed);
        for mode in all_modes() {
            let untraced = run_app_with(&cfg, &app, mode, HazardMode::Raw);
            let (traced, events) = traced_run(&cfg, &app, mode);
            assert_eq!(
                untraced, traced,
                "tracing perturbed the run: seed {seed}, mode {mode}"
            );
            assert!(
                !events.is_empty(),
                "a traced run must observe events: seed {seed}, mode {mode}"
            );
        }
    }
}

#[test]
fn guarded_traced_and_untraced_reports_bit_identical() {
    let cfg = GpuConfig::small();
    for seed in [3, 42] {
        let app = random_app(seed);
        for mode in [ExecMode::Baseline, ExecMode::ConsumerPriority { window: 3 }] {
            let untraced =
                try_run_app_with(&cfg, &app, mode, HazardMode::Raw).expect("guarded run");
            let tracer = RecordingTracer::new();
            let traced = try_run_app_with_tracer(&cfg, &app, mode, HazardMode::Raw, &tracer)
                .expect("guarded traced run");
            assert_eq!(untraced, traced, "seed {seed}, mode {mode}");
        }
    }
}

#[test]
fn two_traced_runs_emit_identical_event_streams() {
    let cfg = GpuConfig::small();
    for seed in [11, 2024] {
        let app = random_app(seed);
        for mode in all_modes() {
            let (r1, e1) = traced_run(&cfg, &app, mode);
            let (r2, e2) = traced_run(&cfg, &app, mode);
            assert_eq!(r1, r2, "reports diverged: seed {seed}, mode {mode}");
            assert_eq!(e1, e2, "event streams diverged: seed {seed}, mode {mode}");
            assert_eq!(
                export_chrome_trace(&e1),
                export_chrome_trace(&e2),
                "chrome exports diverged: seed {seed}, mode {mode}"
            );
        }
    }
}

#[test]
fn traced_runs_share_one_timeline_with_the_schedule() {
    // Every TB span recorded by the DES must match the report's schedule
    // exactly — the trace is a view of the run, not a reconstruction.
    let cfg = GpuConfig::small();
    let app = random_app(55);
    let mode = ExecMode::ConsumerPriority { window: 3 };
    let (report, events) = traced_run(&cfg, &app, mode);
    let mut spans: Vec<(u32, u32, u64, u64)> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::TbSpan {
                id, start, finish, ..
            } => Some((id.kernel, id.tb, *start, *finish)),
            _ => None,
        })
        .collect();
    let mut sched: Vec<(u32, u32, u64, u64)> = report
        .schedule
        .iter()
        .map(|&(key, s, f)| (key.kernel_seq, key.tb, s, f))
        .collect();
    spans.sort_unstable();
    sched.sort_unstable();
    assert_eq!(spans, sched);
}

#[test]
fn degradation_stamps_carry_issue_cycles() {
    // A kernel that degrades (here: forced down the ladder by a zero
    // analysis budget) must be stamped with its issue cycle — nonzero for
    // every kernel after the first — and the stamp must agree between the
    // report and the trace instants.
    use blockmaestro::{try_jit_analyze_app_traced, try_run_analyzed_traced};
    use blockmaestro::{AnalysisBudget, AnalysisCache};

    let cfg = GpuConfig::small();
    let app = random_app(9);
    let budget = AnalysisBudget {
        absint_fuel: 0,
        coarse_fuel: 0,
        ..AnalysisBudget::default()
    };
    let mut cache = AnalysisCache::for_budget(&budget);
    let tracer = RecordingTracer::new();
    let jit = try_jit_analyze_app_traced(&cfg, &app, HazardMode::Raw, &budget, &mut cache, &tracer)
        .expect("analysis");
    assert!(jit.iter().all(|k| k.degradation.is_degraded()));
    let mode = ExecMode::ConsumerPriority { window: 3 };
    let report = try_run_analyzed_traced(&cfg, &app, &jit, mode, &tracer).expect("run");
    let stamped: Vec<_> = report
        .degradation
        .iter()
        .filter(|(_, d)| d.is_degraded())
        .collect();
    assert_eq!(stamped.len(), jit.len());
    assert!(
        report.degradation[1..].iter().any(|(_, d)| d.at_cycle > 0),
        "later kernels issue after cycle 0: {:?}",
        report.degradation
    );
    let instants: Vec<(u32, u64)> = tracer
        .events()
        .iter()
        .filter_map(|e| match e {
            TraceEvent::DegradationStamp { seq, cycle, .. } => Some((*seq, *cycle)),
            _ => None,
        })
        .collect();
    assert_eq!(instants.len(), stamped.len());
    for (seq, cycle) in instants {
        assert_eq!(report.degradation[seq as usize].1.at_cycle, cycle);
    }
}

#[test]
fn pressure_events_surface_as_stamped_instants() {
    // Force admission backpressure with a tiny spill threshold, then check
    // the report's PressureEvents and the trace's Pressure instants agree
    // cycle for cycle.
    use blockmaestro::{jit_analyze_app, try_run_analyzed_faulty_traced, FaultPlan};

    let mut cfg = GpuConfig::small();
    cfg.spill_pressure_threshold = 1;
    cfg.pressure_min_window = 1;
    let mut rng = Rng::new(77);
    // Long 1-to-1 chains over few, large kernels generate counter traffic.
    let n_buffers = 4;
    let specs: Vec<_> = (0..8).map(|_| gen_spec(&mut rng, n_buffers)).collect();
    let app = build_random_app(n_buffers, &specs);
    let jit = jit_analyze_app(&cfg, &app, HazardMode::Raw);
    let tracer = RecordingTracer::new();
    let mode = ExecMode::ConsumerPriority { window: 4 };
    let report =
        try_run_analyzed_faulty_traced(&cfg, &app, &jit, mode, &FaultPlan::default(), &tracer)
            .expect("run");
    let instants: Vec<(u64, u32, u32)> = tracer
        .events()
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Pressure {
                cycle,
                window_before,
                window_after,
                ..
            } => Some((*cycle, *window_before, *window_after)),
            _ => None,
        })
        .collect();
    let expected: Vec<(u64, u32, u32)> = report
        .pressure_events
        .iter()
        .map(|p| (p.cycle, p.window_before, p.window_after))
        .collect();
    assert_eq!(instants, expected);
    if let Some(p) = report.pressure_events.first() {
        assert!(p.window_after < p.window_before);
    }
}
