//! The parallel analysis pipeline must be an *optimization*, not a
//! behavior change: for any application, `ParallelConfig::serial()`
//! (affine fast path on) and `ParallelConfig::with_threads(8)` must
//! produce bit-identical JIT results — access sets, dependency graphs,
//! skip gates, degradation ladders, cache hits — and identical simulated
//! schedules, compared against `ParallelConfig::reference()` (one thread,
//! affine off: the pre-parallel pipeline).

mod common;

use blockmaestro::{
    jit_analyze_app_par, run_analyzed, AnalysisBudget, AnalysisCache, ExecMode, ParallelConfig,
};
use bm_depgraph::HazardMode;
use bm_simt::GpuConfig;
use bm_testkit::{check_cases, prop_ensure, Rng};
use common::{build_random_app, KernelSpec};

/// Draws a spec with grids large enough (40..100 TBs) to clear the affine
/// fast path's minimum-grid threshold, unlike the default generator.
fn gen_large_spec(rng: &mut Rng, n_buffers: usize) -> KernelSpec {
    let mut s = KernelSpec {
        src_buf: rng.range_usize(0, n_buffers),
        dst_buf: rng.range_usize(0, n_buffers),
        shift: rng.range_u32(0, 70),
        tbs: rng.range_u32(40, 100),
    };
    if s.src_buf == s.dst_buf {
        s.dst_buf = (s.dst_buf + 1) % n_buffers;
    }
    s
}

#[test]
fn parallel_and_affine_match_reference() {
    check_cases(0xD373, 32, |rng| {
        let n_buffers = rng.range_usize(2, 5);
        let n_specs = rng.range_usize(2, 6);
        let specs: Vec<KernelSpec> = (0..n_specs)
            .map(|_| gen_large_spec(rng, n_buffers))
            .collect();
        let app = build_random_app(n_buffers, &specs);
        let cfg = GpuConfig::small();
        let budget = AnalysisBudget::default();

        let mut ref_cache = AnalysisCache::for_budget(&budget);
        let reference = jit_analyze_app_par(
            &cfg,
            &app,
            HazardMode::Raw,
            &budget,
            &mut ref_cache,
            &ParallelConfig::reference(),
        );
        let ref_report = run_analyzed(
            &cfg,
            &app,
            &reference,
            ExecMode::ConsumerPriority { window: 3 },
        );

        for par in [
            ParallelConfig::serial(),
            // Oversubscribed so the multi-worker code paths run even on
            // machines with fewer than 8 cores.
            ParallelConfig::with_threads(8).oversubscribed(),
        ] {
            let mut cache = AnalysisCache::for_budget(&budget);
            let jit = jit_analyze_app_par(&cfg, &app, HazardMode::Raw, &budget, &mut cache, &par);
            prop_ensure!(
                jit.len() == reference.len(),
                "kernel count diverged under {par:?} for specs {specs:?}"
            );
            for (got, want) in jit.iter().zip(&reference) {
                prop_ensure!(
                    got.access == want.access,
                    "access sets diverged for kernel {} under {par:?}, specs {specs:?}",
                    got.seq
                );
                prop_ensure!(
                    got.graph == want.graph,
                    "graph diverged for kernel {} under {par:?}, specs {specs:?}",
                    got.seq
                );
                prop_ensure!(
                    got.skip_gates == want.skip_gates,
                    "skip gates diverged for kernel {} under {par:?}, specs {specs:?}",
                    got.seq
                );
                prop_ensure!(
                    got.degradation == want.degradation,
                    "degradation diverged for kernel {} under {par:?}, specs {specs:?}",
                    got.seq
                );
                prop_ensure!(
                    got.cache_hit == want.cache_hit,
                    "cache hit diverged for kernel {} under {par:?}, specs {specs:?}",
                    got.seq
                );
                prop_ensure!(
                    got.profile.duration == want.profile.duration
                        && got.profile.txns_per_tb == want.profile.txns_per_tb
                        && got.profile.n_tbs == want.profile.n_tbs,
                    "profile diverged for kernel {} under {par:?}, specs {specs:?}",
                    got.seq
                );
            }
            prop_ensure!(
                cache.stats() == ref_cache.stats(),
                "cache stats diverged under {par:?} for specs {specs:?}"
            );
            let report = run_analyzed(&cfg, &app, &jit, ExecMode::ConsumerPriority { window: 3 });
            prop_ensure!(
                report.total_cycles == ref_report.total_cycles
                    && report.kernel_region_cycles == ref_report.kernel_region_cycles,
                "simulated schedule diverged under {par:?} for specs {specs:?}"
            );
        }
        Ok(())
    });
}
