//! Pins the dependency-pattern classes the launch-time analysis detects
//! for each benchmark (the "measured P#" column documented in
//! EXPERIMENTS.md). A change here means the analysis precision or a
//! workload's access structure changed — both worth noticing.

use blockmaestro::jit_analyze_app;
use bm_depgraph::{HazardMode, Pattern};
use bm_simt::GpuConfig;
use bm_workloads::{suite, Scale};
use std::collections::BTreeSet;

fn measured(name: &str) -> BTreeSet<u8> {
    let cfg = GpuConfig::titan_x_pascal();
    let bench = suite().into_iter().find(|b| b.name == name).unwrap();
    let app = (bench.build)(Scale::Small);
    let jit = jit_analyze_app(&cfg, &app, HazardMode::Raw);
    jit.iter()
        .skip(1)
        .map(|k| k.storage.pattern.table_row())
        .collect()
}

#[test]
fn independent_apps_detect_pattern_7() {
    assert_eq!(measured("BICG"), BTreeSet::from([7]));
    assert_eq!(measured("MVT"), BTreeSet::from([7]));
}

#[test]
fn stencils_detect_overlapped() {
    assert!(measured("HS").contains(&6), "hotspot halos are overlapped");
    assert!(
        measured("PATH").contains(&6),
        "pathfinder halos are overlapped"
    );
    let fdtd = measured("FDTD-2D");
    assert!(
        fdtd.contains(&6) && fdtd.contains(&7),
        "fdtd: overlapped + independent"
    );
}

#[test]
fn conv_nets_detect_fully_connected_and_elementwise() {
    let alex = measured("AlexNet");
    assert!(alex.contains(&1), "conv/fc layers are fully connected");
    assert!(alex.contains(&3), "relu/norm layers are 1-to-1");
}

#[test]
fn no_app_is_entirely_irregular() {
    for bench in suite() {
        let m = measured(bench.name);
        let non_irregular = m.iter().filter(|&&p| p != 0).count();
        assert!(
            non_irregular > 0,
            "{}: every graph fell back to irregular storage: {m:?}",
            bench.name
        );
    }
}

#[test]
fn every_graph_is_encodable_or_degraded() {
    // After the 6-bit-counter degrade rule, no kernel pair's max child
    // degree may exceed the counter range.
    let cfg = GpuConfig::titan_x_pascal();
    for bench in suite() {
        let app = (bench.build)(Scale::Small);
        let jit = jit_analyze_app(&cfg, &app, HazardMode::Raw);
        for k in &jit {
            if k.graph.is_fully_connected() || k.graph.is_independent() {
                continue; // symbolic encodings need no counters beyond one
            }
            assert!(
                k.graph.max_child_degree() <= blockmaestro::hw::MAX_COUNTER,
                "{} kernel {}: degree {} survived the degrade rule",
                bench.name,
                k.seq,
                k.graph.max_child_degree()
            );
        }
    }
}

#[test]
fn pattern_display_is_informative() {
    // Debuggability: every pattern has a non-empty, distinct display form.
    let patterns = [
        Pattern::Independent,
        Pattern::FullyConnected,
        Pattern::OneToOne,
        Pattern::OneToN,
        Pattern::NToOne,
        Pattern::NGroupFullyConnected { groups: 3 },
        Pattern::Overlapped { max_degree: 5 },
        Pattern::Irregular,
    ];
    let mut seen = BTreeSet::new();
    for p in patterns {
        let s = p.to_string();
        assert!(!s.is_empty());
        assert!(seen.insert(s));
    }
}
