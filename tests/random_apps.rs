//! Property-based end-to-end fuzzing: random multi-kernel applications
//! with randomly-aliased buffers, halo widths, and grid sizes must always
//! produce architecturally-invisible schedules under every mode.

use blockmaestro::{check_schedule, run_app_with, ExecMode};
use bm_cmdq::{ApiCall, Application};
use bm_depgraph::HazardMode;
use bm_ptx::kernel::{ArgValue, Dim3, Launch};
use bm_ptx::mem::AddressSpace;
use bm_ptx::parser::parse_kernel;
use bm_simt::GpuConfig;
use bm_testkit::{check_cases, prop_ensure, Rng};
use std::collections::HashMap;
use std::sync::Arc;

/// A shifted map kernel: `OUT[i] = IN[clamp(i + shift)] + 1`, which lets
/// random shifts create 1-to-1, overlapped, and skewed dependency graphs.
fn shift_kernel() -> Arc<bm_ptx::kernel::Kernel> {
    Arc::new(
        parse_kernel(
            r#".entry shift(.param .u64 IN, .param .u64 OUT, .param .u32 n, .param .u32 s)
            {
              ld.param.u64 %rd1, [IN];
              ld.param.u64 %rd2, [OUT];
              ld.param.u32 %r9, [n];
              ld.param.u32 %r10, [s];
              mov.u32 %r1, %ctaid.x;
              mov.u32 %r2, %ntid.x;
              mov.u32 %r3, %tid.x;
              mad.lo.u32 %r4, %r1, %r2, %r3;
              setp.ge.u32 %p1, %r4, %r9;
              @%p1 bra $DONE;
              add.u32 %r5, %r4, %r10;
              sub.u32 %r6, %r9, 1;
              min.u32 %r5, %r5, %r6;
              mul.wide.u32 %rd3, %r5, 4;
              add.u64 %rd4, %rd1, %rd3;
              ld.global.f32 %f1, [%rd4];
              add.f32 %f2, %f1, 0f3F800000;
              mul.wide.u32 %rd5, %r4, 4;
              add.u64 %rd6, %rd2, %rd5;
              st.global.f32 [%rd6], %f2;
            $DONE:
              ret;
            }"#,
        )
        .unwrap(),
    )
}

#[derive(Debug, Clone)]
struct KernelSpec {
    src_buf: usize,
    dst_buf: usize,
    shift: u32,
    tbs: u32,
}

fn build_random_app(n_buffers: usize, specs: &[KernelSpec]) -> Application {
    let max_tbs = specs.iter().map(|s| s.tbs).max().unwrap_or(1) as u64;
    let n = max_tbs * 64;
    let mut space = AddressSpace::new();
    let bufs: Vec<_> = (0..n_buffers).map(|_| space.alloc(4 * n)).collect();
    let k = shift_kernel();
    let mut host_data = HashMap::new();
    host_data.insert(
        bufs[0].id,
        (0..n).map(|i| (i % 97) as f32).collect::<Vec<_>>(),
    );
    let mut calls = vec![ApiCall::MemcpyH2D {
        alloc: bufs[0].id,
        bytes: 4 * n,
    }];
    for s in specs {
        let sz = s.tbs as u64 * 64;
        calls.push(ApiCall::KernelLaunch(Launch::new(
            k.clone(),
            Dim3::x(s.tbs),
            Dim3::x(64),
            vec![
                ArgValue::Ptr(bufs[s.src_buf].base),
                ArgValue::Ptr(bufs[s.dst_buf].base),
                ArgValue::U32(sz as u32),
                ArgValue::U32(s.shift),
            ],
        )));
    }
    Application {
        name: "random".into(),
        space,
        calls,
        host_data,
    }
}

fn gen_spec(rng: &mut Rng, n_buffers: usize) -> KernelSpec {
    KernelSpec {
        src_buf: rng.range_usize(0, n_buffers),
        dst_buf: rng.range_usize(0, n_buffers),
        shift: rng.range_u32(0, 70),
        tbs: rng.range_u32(1, 12),
    }
}

#[test]
fn random_apps_stay_architecturally_invisible() {
    check_cases(0xAAA5, 24, |rng| {
        let n_buffers = rng.range_usize(2, 5);
        let n_specs = rng.range_usize(2, 6);
        let window = rng.range_u32(2, 5);
        let hazard = *rng.pick(&[HazardMode::Raw, HazardMode::All]);
        let specs: Vec<KernelSpec> = (0..n_specs)
            .map(|_| {
                let mut s = gen_spec(rng, n_buffers);
                // In-place kernels with shifts are intra-kernel racy
                // (TB A reads what TB B writes within the same launch);
                // keep src != dst so the *program itself* is race-free and
                // only inter-kernel ordering is under test.
                if s.src_buf == s.dst_buf {
                    s.dst_buf = (s.dst_buf + 1) % n_buffers;
                }
                s
            })
            .collect();
        let app = build_random_app(n_buffers, &specs);
        // With RAW-only tracking, a WAR hazard between kernels (consumer
        // overwriting a buffer the producer still reads) is only safe when
        // it also carries a RAW chain; random apps can violate that, so
        // the paper-faithful Raw mode is checked only on WAR-free apps.
        if hazard == HazardMode::Raw {
            let mut writes_after_read: bool = false;
            for i in 0..specs.len() {
                for j in i + 1..specs.len() {
                    if specs[j].dst_buf == specs[i].src_buf {
                        writes_after_read = true;
                    }
                }
            }
            if writes_after_read {
                return Ok(());
            }
        }
        let cfg = GpuConfig::small();
        let report = run_app_with(&cfg, &app, ExecMode::ConsumerPriority { window }, hazard);
        let eq = check_schedule(&app, &report.schedule).expect("replay");
        prop_ensure!(eq.is_match(), "schedule diverged for specs {specs:?}");
        Ok(())
    });
}
