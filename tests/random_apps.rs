//! Property-based end-to-end fuzzing: random multi-kernel applications
//! with randomly-aliased buffers, halo widths, and grid sizes must always
//! produce architecturally-invisible schedules under every mode.

mod common;

use blockmaestro::{check_schedule, run_app_with, ExecMode};
use bm_depgraph::HazardMode;
use bm_simt::GpuConfig;
use bm_testkit::{check_cases, prop_ensure};
use common::{build_random_app, gen_spec, has_war_hazard, KernelSpec};

#[test]
fn random_apps_stay_architecturally_invisible() {
    check_cases(0xAAA5, 24, |rng| {
        let n_buffers = rng.range_usize(2, 5);
        let n_specs = rng.range_usize(2, 6);
        let window = rng.range_u32(2, 5);
        let hazard = *rng.pick(&[HazardMode::Raw, HazardMode::All]);
        let specs: Vec<KernelSpec> = (0..n_specs)
            .map(|_| {
                let mut s = gen_spec(rng, n_buffers);
                // In-place kernels with shifts are intra-kernel racy
                // (TB A reads what TB B writes within the same launch);
                // keep src != dst so the *program itself* is race-free and
                // only inter-kernel ordering is under test.
                if s.src_buf == s.dst_buf {
                    s.dst_buf = (s.dst_buf + 1) % n_buffers;
                }
                s
            })
            .collect();
        let app = build_random_app(n_buffers, &specs);
        if hazard == HazardMode::Raw && has_war_hazard(&specs) {
            return Ok(());
        }
        let cfg = GpuConfig::small();
        let report = run_app_with(&cfg, &app, ExecMode::ConsumerPriority { window }, hazard);
        let eq = check_schedule(&app, &report.schedule).expect("replay");
        prop_ensure!(eq.is_match(), "schedule diverged for specs {specs:?}");
        Ok(())
    });
}
