//! Cross-launch trace-memoization determinism: traces synthesized from a
//! validated representative-TB anchor must be bit-identical to interpreted
//! traces — same `JitKernel` outputs, same cache stats — across
//! `ParallelConfig::reference()` (memo off), `ParallelConfig::serial()`,
//! and `ParallelConfig::with_threads(8)`, including seeds that force the
//! warp lane law to reject and seeds whose traces genuinely depend on
//! buffer contents (which must pin the memo key to interpretation).

mod common;

use blockmaestro::{
    jit_analyze_app_par, jit_analyze_app_par_stats, AnalysisBudget, AnalysisCache, JitKernel,
    ParallelConfig, TraceMemoStats,
};
use bm_cmdq::{ApiCall, Application};
use bm_depgraph::HazardMode;
use bm_ptx::kernel::{ArgValue, Dim3, Launch};
use bm_ptx::mem::AddressSpace;
use bm_ptx::parser::parse_kernel;
use bm_simt::GpuConfig;
use bm_testkit::{check_cases, prop_ensure, Rng};
use common::{build_random_app, KernelSpec};
use std::collections::HashMap;
use std::sync::Arc;

/// Runs `app` under the reference config and both fast-path configs,
/// requiring bit-identical `JitKernel` outputs and cache stats; returns
/// the `serial()` run's memo counters for the caller to assert on.
fn check_configs(
    cfg: &GpuConfig,
    app: &Application,
    label: &str,
) -> Result<TraceMemoStats, String> {
    let budget = AnalysisBudget::default();
    let mut ref_cache = AnalysisCache::for_budget(&budget);
    let reference = jit_analyze_app_par(
        cfg,
        app,
        HazardMode::Raw,
        &budget,
        &mut ref_cache,
        &ParallelConfig::reference(),
    );
    let mut serial_stats = TraceMemoStats::default();
    for par in [
        ParallelConfig::serial(),
        // Oversubscribed so the plan/replay parallel path runs even on
        // machines with fewer than 8 cores.
        ParallelConfig::with_threads(8).oversubscribed(),
    ] {
        let mut cache = AnalysisCache::for_budget(&budget);
        let (jit, stats) =
            jit_analyze_app_par_stats(cfg, app, HazardMode::Raw, &budget, &mut cache, &par);
        if par.threads <= 1 {
            serial_stats = stats;
        }
        prop_ensure!(
            jit.len() == reference.len(),
            "kernel count diverged under {par:?} ({label})"
        );
        for (got, want) in jit.iter().zip(&reference) {
            prop_ensure!(
                kernel_bits(got) == kernel_bits(want),
                "kernel {} diverged under {par:?} ({label}): got {:?} want {:?}",
                got.seq,
                kernel_bits(got),
                kernel_bits(want)
            );
            prop_ensure!(
                got.access == want.access && got.graph == want.graph,
                "access/graph diverged for kernel {} under {par:?} ({label})",
                got.seq
            );
        }
        prop_ensure!(
            cache.stats() == ref_cache.stats(),
            "cache stats diverged under {par:?} ({label})"
        );
    }
    Ok(serial_stats)
}

/// The scalar fields a synthesized trace could corrupt, in one
/// comparable/printable tuple.
fn kernel_bits(k: &JitKernel) -> (u32, u64, u64, u32, Vec<u32>, String, bool) {
    (
        k.seq,
        k.profile.duration,
        k.profile.txns_per_tb,
        k.profile.n_tbs,
        k.skip_gates.clone(),
        k.degradation.to_string(),
        k.cache_hit,
    )
}

/// Specs sharing one grid and shift over distinct buffer pairs: every
/// launch has a distinct analysis key (different pointers) but the same
/// trace-memo key, so the run interprets the first occurrences and
/// synthesizes the rest.
fn gen_memo_specs(rng: &mut Rng, n_buffers: usize) -> Vec<KernelSpec> {
    let tbs = rng.range_u32(40, 100);
    let shift = rng.range_u32(0, 70);
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    for i in 0..n_buffers {
        for j in 0..n_buffers {
            if i != j {
                pairs.push((i, j));
            }
        }
    }
    let n_specs = rng.range_usize(6, pairs.len().min(10) + 1);
    (0..n_specs)
        .map(|k| {
            let (src_buf, dst_buf) = pairs[k % pairs.len()];
            KernelSpec {
                src_buf,
                dst_buf,
                shift,
                tbs,
            }
        })
        .collect()
}

#[test]
fn synthesized_traces_match_interpreted_traces() {
    check_cases(0x7E40, 32, |rng| {
        let n_buffers = rng.range_usize(3, 6);
        let specs = gen_memo_specs(rng, n_buffers);
        let app = build_random_app(n_buffers, &specs);
        let cfg = GpuConfig::small();
        let stats = check_configs(&cfg, &app, &format!("specs {specs:?}"))?;
        // Six-plus distinct keys sharing one trace key: the anchor and
        // both confirmations interpret, occurrence 3 synthesizes.
        prop_ensure!(
            stats.traces_synthesized > 0,
            "no trace was synthesized for specs {specs:?}: {stats:?}"
        );
        prop_ensure!(
            stats.keys_rejected == 0,
            "affine shift kernel must never reject: {stats:?}"
        );
        // And the interpreted traces themselves ran through the lane law.
        prop_ensure!(
            stats.law.lanes_synthesized > 0 && stats.law.rejected_warps == 0,
            "lane law must accept the affine shift kernel: {stats:?}"
        );
        Ok(())
    });
}

/// `OUT[gid & 7] = IN[gid] + 1`: lane 8 wraps back to offset 0, so the
/// per-warp affine law must reject every full warp and fall back to full
/// interpretation — which still has to match the reference bit for bit.
fn masked_kernel() -> Arc<bm_ptx::kernel::Kernel> {
    Arc::new(
        parse_kernel(
            r#".entry mask(.param .u64 IN, .param .u64 OUT)
            {
              ld.param.u64 %rd1, [IN];
              ld.param.u64 %rd2, [OUT];
              mov.u32 %r1, %ctaid.x;
              mov.u32 %r2, %ntid.x;
              mov.u32 %r3, %tid.x;
              mad.lo.u32 %r4, %r1, %r2, %r3;
              mul.wide.u32 %rd3, %r4, 4;
              add.u64 %rd4, %rd1, %rd3;
              ld.global.f32 %f1, [%rd4];
              add.f32 %f2, %f1, 0f3F800000;
              and.b32 %r5, %r4, 7;
              mul.wide.u32 %rd5, %r5, 4;
              add.u64 %rd6, %rd2, %rd5;
              st.global.f32 [%rd6], %f2;
              ret;
            }"#,
        )
        .unwrap(),
    )
}

#[test]
fn law_rejection_seeds_fall_back_exactly() {
    check_cases(0x7E41, 16, |rng| {
        let tbs = rng.range_u32(8, 40);
        let n_launches = rng.range_usize(4, 8);
        let n = tbs as u64 * 64;
        let mut space = AddressSpace::new();
        let src = space.alloc(4 * n);
        let dsts: Vec<_> = (0..n_launches).map(|_| space.alloc(4 * n)).collect();
        let k = masked_kernel();
        let mut host_data = HashMap::new();
        host_data.insert(src.id, (0..n).map(|i| (i % 31) as f32).collect::<Vec<_>>());
        let mut calls = vec![ApiCall::MemcpyH2D {
            alloc: src.id,
            bytes: 4 * n,
        }];
        for d in &dsts {
            calls.push(ApiCall::KernelLaunch(Launch::new(
                k.clone(),
                Dim3::x(tbs),
                Dim3::x(64),
                vec![ArgValue::Ptr(src.base), ArgValue::Ptr(d.base)],
            )));
        }
        let app = Application {
            name: "masked".into(),
            space,
            calls,
            host_data,
        };
        let cfg = GpuConfig::small();
        let stats = check_configs(&cfg, &app, &format!("tbs {tbs} launches {n_launches}"))?;
        prop_ensure!(
            stats.law.rejected_warps > 0 && stats.law.law_warps == 0,
            "masked kernel must reject the lane law in every warp: {stats:?}"
        );
        // The rejected-but-deterministic trace still memoizes across
        // launches: four-plus occurrences synthesize at least once.
        prop_ensure!(
            stats.traces_synthesized > 0,
            "trace memo must still amortize a law-rejected kernel: {stats:?}"
        );
        Ok(())
    });
}

/// A kernel whose event stream depends on loaded *contents*: a u32 flag
/// at `F[0]` steers an extra load. Launches pointing `F` at buffers with
/// different contents share a trace-memo key but produce different
/// traces — the confirmation pass must catch that and pin the key to
/// interpretation, keeping every config bit-identical to the reference.
fn flag_kernel() -> Arc<bm_ptx::kernel::Kernel> {
    Arc::new(
        parse_kernel(
            r#".entry flagk(.param .u64 F, .param .u64 OUT)
            {
              ld.param.u64 %rd1, [F];
              ld.param.u64 %rd2, [OUT];
              mov.u32 %r1, %ctaid.x;
              mov.u32 %r2, %ntid.x;
              mov.u32 %r3, %tid.x;
              mad.lo.u32 %r4, %r1, %r2, %r3;
              mul.wide.u32 %rd3, %r4, 4;
              add.u64 %rd4, %rd1, %rd3;
              add.u64 %rd6, %rd2, %rd3;
              ld.global.u32 %r7, [%rd1];
              setp.ge.u32 %p1, %r7, 1;
              @%p1 bra $EXTRA;
              st.global.f32 [%rd6], 0f3F800000;
              ret;
            $EXTRA:
              ld.global.f32 %f1, [%rd4];
              add.f32 %f2, %f1, 0f3F800000;
              st.global.f32 [%rd6], %f2;
              ret;
            }"#,
        )
        .unwrap(),
    )
}

#[test]
fn content_dependent_traces_reject_the_memo() {
    let tbs = 8u32;
    let n = tbs as u64 * 64;
    let mut space = AddressSpace::new();
    // `zero` stays all-zeroes (flag off); `ones` is host-initialized with
    // nonzero f32 bit patterns (flag on). Kernels never write either.
    let zero = space.alloc(4 * n);
    let ones = space.alloc(4 * n);
    let outs: Vec<_> = (0..5).map(|_| space.alloc(4 * n)).collect();
    let k = flag_kernel();
    let mut host_data = HashMap::new();
    host_data.insert(ones.id, vec![1.0f32; n as usize]);
    let mut calls = vec![ApiCall::MemcpyH2D {
        alloc: ones.id,
        bytes: 4 * n,
    }];
    // Occurrences 0 and 1 already disagree, so the memo rejects during
    // confirmation; occurrence 3's planned synthesis must be repaired
    // inline by the parallel replay.
    let flags = [&zero, &ones, &zero, &ones, &zero];
    for (f, out) in flags.iter().zip(&outs) {
        calls.push(ApiCall::KernelLaunch(Launch::new(
            k.clone(),
            Dim3::x(tbs),
            Dim3::x(64),
            vec![ArgValue::Ptr(f.base), ArgValue::Ptr(out.base)],
        )));
    }
    let app = Application {
        name: "flagged".into(),
        space,
        calls,
        host_data,
    };
    let cfg = GpuConfig::small();
    let stats = check_configs(&cfg, &app, "flag kernel").expect("configs must agree");
    assert_eq!(stats.keys_rejected, 1, "flag mismatch must reject the key");
    assert_eq!(
        stats.traces_synthesized, 0,
        "a rejected key must never serve synthesized traces"
    );
    assert_eq!(
        stats.traces_interpreted, 5,
        "every occurrence interprets after the rejection"
    );

    // The two flag populations really produce different profiles — the
    // divergence the memo must not paper over.
    let budget = AnalysisBudget::default();
    let mut cache = AnalysisCache::for_budget(&budget);
    let jit = jit_analyze_app_par(
        &cfg,
        &app,
        HazardMode::Raw,
        &budget,
        &mut cache,
        &ParallelConfig::serial(),
    );
    assert_ne!(
        jit[0].profile.txns_per_tb, jit[1].profile.txns_per_tb,
        "flag-on launches take the extra-load path"
    );
    assert_eq!(jit[0].profile.txns_per_tb, jit[2].profile.txns_per_tb);
    assert_eq!(jit[1].profile.txns_per_tb, jit[3].profile.txns_per_tb);
}
