//! Service smoke: 8 concurrent GAUSSIAN requests with one injected
//! worker crash and one deadline miss. Every request must terminate with
//! a correct typed outcome, and the crashed-then-retried run's report
//! must be bit-identical to an uninterrupted run. Mirrored by the CI
//! `serve-smoke` job, which drives the same scenario through the
//! `bmserve` binary's NDJSON interface.

use blockmaestro::{try_run_app_with, ExecMode, FaultPlan};
use bm_depgraph::HazardMode;
use bm_multi::{try_run_app_multi, MultiGpuConfig};
use bm_serve::{RunRequest, RunService, ServeConfig, ServeError, VirtualClock};
use bm_simt::GpuConfig;
use bm_workloads::{suite, Scale};

#[test]
fn eight_concurrent_gaussians_with_a_crash_and_a_deadline_miss() {
    let bench = suite()
        .into_iter()
        .find(|b| b.name == "GAUSSIAN")
        .expect("GAUSSIAN in the Table II suite");
    let app = || (bench.build)(Scale::Small);
    let mode = ExecMode::ConsumerPriority { window: 3 };
    let reference = try_run_app_with(&GpuConfig::small(), &app(), mode, HazardMode::Raw).unwrap();

    let clock = VirtualClock::new();
    let scfg = ServeConfig {
        workers: 4,
        queue_depth: 16,
        ..ServeConfig::default()
    };
    let service = RunService::start(GpuConfig::small(), scfg, clock);

    const CRASH_ID: u64 = 3;
    const DEADLINE_ID: u64 = 5;
    let pendings: Vec<_> = (1..=8u64)
        .map(|id| {
            let mut req = RunRequest::new(id, app());
            req.mode = mode;
            if id == CRASH_ID {
                // Worker panic at an interior kernel boundary; the retry
                // resumes from the boundary checkpoint.
                req.fault = FaultPlan {
                    panic_at_kernel: Some(3),
                    ..FaultPlan::default()
                };
            }
            if id == DEADLINE_ID {
                // Virtual time never reaches tick 0 *before* submission,
                // so this deadline is already expired at admission.
                req.deadline = Some(0);
            }
            service.submit(req).expect("queue holds all eight")
        })
        .collect();

    let mut outcomes: Vec<_> = pendings.into_iter().map(|p| p.wait()).collect();
    outcomes.sort_by_key(|o| o.id);
    assert_eq!(outcomes.len(), 8, "every request terminates");

    for out in &outcomes {
        match out.id {
            DEADLINE_ID => {
                assert!(
                    matches!(out.result, Err(ServeError::DeadlineExceeded { .. })),
                    "request {} should miss its deadline, got {:?}",
                    out.id,
                    out.result
                );
            }
            CRASH_ID => {
                assert_eq!(out.attempts, 2, "one crash, one retry");
                assert_eq!(
                    out.result.as_ref().expect("retry recovers"),
                    &reference,
                    "retried report must be bit-identical to the uninterrupted run"
                );
            }
            _ => {
                assert_eq!(out.attempts, 1);
                assert_eq!(out.result.as_ref().expect("clean run"), &reference);
            }
        }
        assert!(!out.shed, "no breaker should trip in this scenario");
    }

    let counters = service.counters();
    assert_eq!(counters.counter("serve_outcome_ok"), 7);
    assert_eq!(counters.counter("serve_deadline_miss"), 1);
    assert_eq!(counters.counter("serve_outcome_deadline"), 1);
    assert_eq!(counters.counter("breaker_to_open"), 0);
    service.shutdown();
}

/// Multi-device placement: device groups are leased from the service's
/// pool, grouped requests run through `bm-multi` and return the same
/// report the direct multi entry point produces, and a group larger
/// than the pool is a typed `placement` rejection — even while smaller
/// placements succeed around it.
#[test]
fn device_groups_are_placed_leased_and_bounded() {
    let bench = suite()
        .into_iter()
        .find(|b| b.name == "HS")
        .expect("HS in the Table II suite");
    let app = || (bench.build)(Scale::Small);
    let mode = ExecMode::ConsumerPriority { window: 3 };
    let cfg = GpuConfig::small();
    let scfg = ServeConfig {
        workers: 3,
        total_devices: 4,
        ..ServeConfig::default()
    };
    let single = try_run_app_with(&cfg, &app(), mode, HazardMode::Raw).unwrap();
    let multi = try_run_app_multi(
        &cfg,
        &MultiGpuConfig {
            devices: 2,
            ..scfg.multi.clone()
        },
        &app(),
        mode,
        HazardMode::Raw,
    )
    .unwrap();

    let service = RunService::start(cfg, scfg, VirtualClock::new());
    // Interleave: two 2-device groups (together they exactly fill the
    // pool), one single-device run, and one impossible 8-device ask.
    let pendings: Vec<_> = [(1u64, 2u32), (2, 2), (3, 1), (4, 8)]
        .into_iter()
        .map(|(id, devices)| {
            let mut req = RunRequest::new(id, app());
            req.mode = mode;
            req.devices = devices;
            service.submit(req).expect("queue holds all four")
        })
        .collect();
    let mut outcomes: Vec<_> = pendings.into_iter().map(|p| p.wait()).collect();
    outcomes.sort_by_key(|o| o.id);

    for out in &outcomes {
        match out.id {
            1 | 2 => {
                let report = out.result.as_ref().expect("2-device run succeeds");
                assert_eq!(
                    report, &multi,
                    "served group run matches direct bm-multi run"
                );
                assert_eq!(
                    report.multi.as_ref().map(|m| m.per_device.len()),
                    Some(2),
                    "report carries per-device stats"
                );
            }
            3 => {
                assert_eq!(out.result.as_ref().expect("single run succeeds"), &single);
            }
            4 => {
                assert_eq!(
                    out.result,
                    Err(ServeError::Placement {
                        requested: 8,
                        total: 4
                    }),
                    "impossible group is a typed rejection"
                );
                assert_eq!(out.attempts, 0, "rejected before any attempt");
                assert_eq!(out.label(), "placement");
            }
            _ => unreachable!(),
        }
    }
    service.shutdown();
}
