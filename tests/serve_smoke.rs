//! Service smoke: 8 concurrent GAUSSIAN requests with one injected
//! worker crash and one deadline miss. Every request must terminate with
//! a correct typed outcome, and the crashed-then-retried run's report
//! must be bit-identical to an uninterrupted run. Mirrored by the CI
//! `serve-smoke` job, which drives the same scenario through the
//! `bmserve` binary's NDJSON interface.

use blockmaestro::{try_run_app_with, ExecMode, FaultPlan};
use bm_depgraph::HazardMode;
use bm_serve::{RunRequest, RunService, ServeConfig, ServeError, VirtualClock};
use bm_simt::GpuConfig;
use bm_workloads::{suite, Scale};

#[test]
fn eight_concurrent_gaussians_with_a_crash_and_a_deadline_miss() {
    let bench = suite()
        .into_iter()
        .find(|b| b.name == "GAUSSIAN")
        .expect("GAUSSIAN in the Table II suite");
    let app = || (bench.build)(Scale::Small);
    let mode = ExecMode::ConsumerPriority { window: 3 };
    let reference = try_run_app_with(&GpuConfig::small(), &app(), mode, HazardMode::Raw).unwrap();

    let clock = VirtualClock::new();
    let scfg = ServeConfig {
        workers: 4,
        queue_depth: 16,
        ..ServeConfig::default()
    };
    let service = RunService::start(GpuConfig::small(), scfg, clock);

    const CRASH_ID: u64 = 3;
    const DEADLINE_ID: u64 = 5;
    let pendings: Vec<_> = (1..=8u64)
        .map(|id| {
            let mut req = RunRequest::new(id, app());
            req.mode = mode;
            if id == CRASH_ID {
                // Worker panic at an interior kernel boundary; the retry
                // resumes from the boundary checkpoint.
                req.fault = FaultPlan {
                    panic_at_kernel: Some(3),
                    ..FaultPlan::default()
                };
            }
            if id == DEADLINE_ID {
                // Virtual time never reaches tick 0 *before* submission,
                // so this deadline is already expired at admission.
                req.deadline = Some(0);
            }
            service.submit(req).expect("queue holds all eight")
        })
        .collect();

    let mut outcomes: Vec<_> = pendings.into_iter().map(|p| p.wait()).collect();
    outcomes.sort_by_key(|o| o.id);
    assert_eq!(outcomes.len(), 8, "every request terminates");

    for out in &outcomes {
        match out.id {
            DEADLINE_ID => {
                assert!(
                    matches!(out.result, Err(ServeError::DeadlineExceeded { .. })),
                    "request {} should miss its deadline, got {:?}",
                    out.id,
                    out.result
                );
            }
            CRASH_ID => {
                assert_eq!(out.attempts, 2, "one crash, one retry");
                assert_eq!(
                    out.result.as_ref().expect("retry recovers"),
                    &reference,
                    "retried report must be bit-identical to the uninterrupted run"
                );
            }
            _ => {
                assert_eq!(out.attempts, 1);
                assert_eq!(out.result.as_ref().expect("clean run"), &reference);
            }
        }
        assert!(!out.shed, "no breaker should trip in this scenario");
    }

    let counters = service.counters();
    assert_eq!(counters.counter("serve_outcome_ok"), 7);
    assert_eq!(counters.counter("serve_deadline_miss"), 1);
    assert_eq!(counters.counter("serve_outcome_deadline"), 1);
    assert_eq!(counters.counter("breaker_to_open"), 0);
    service.shutdown();
}
