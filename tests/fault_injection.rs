//! Deterministic fault-injection harness.
//!
//! For every fault class, 32 seeded cases (384 total) corrupt the
//! dependency metadata of a kernel chain — dropped/phantom dependency-list
//! edges, mis-seeded or saturated parent counters, forced buffer spills,
//! corrupted access sets and patterns, simulated crashes, cooperative
//! cancellations, injected worker panics, and dropped or corrupted
//! cross-device link transfers — and run the guarded pipeline. Every case
//! must end in exactly one of two states:
//!
//! 1. recovery: `Ok(report)` whose schedule replays to the serialized
//!    memory image, or
//! 2. a typed error (`BmError`) — never a wrong accepted result, an
//!    *uncontained* panic, or a hang (the DES watchdog bounds every run;
//!    [`FaultClass::WorkerPanic`] unwinds by design and must be contained
//!    by `catch_unwind`, leaving a resumable checkpoint behind).

use blockmaestro::{
    check_schedule, corrupt_access_set, corrupt_pattern, random_plan, try_jit_analyze_app,
    try_run_app_checkpointed, try_run_app_faulty, try_run_app_with, BmError, CheckpointPolicy,
    DegradationReason, EngineError, ExecMode, FaultClass, FaultPlan, FaultRng, JitKernel, MemStore,
};
use bm_cmdq::{ApiCall, Application};
use bm_depgraph::HazardMode;
use bm_multi::{try_run_app_multi_faulty, MultiGpuConfig};
use bm_ptx::kernel::{ArgValue, Dim3, Launch};
use bm_ptx::mem::AddressSpace;
use bm_ptx::parser::parse_kernel;
use bm_simt::GpuConfig;
use bm_testkit::{check_cases, Rng};
use bm_trace::NullTracer;
use std::collections::HashMap;
use std::sync::Arc;

const SEEDS_PER_CLASS: usize = 32;

/// A 4-kernel RAW chain: B=f(A), C=f(B), D=f(C), E=f(D); 8 TBs of 64
/// threads each, so every inter-kernel graph is explicit 1-to-1 — the
/// configuration where all of the dependency hardware is live.
fn chain_app() -> Application {
    let tbs = 8u32;
    let n = tbs as u64 * 64;
    let mut space = AddressSpace::new();
    let allocs: Vec<_> = (0..5).map(|_| space.alloc(4 * n)).collect();
    let k = Arc::new(
        parse_kernel(
            r#".entry step(.param .u64 X, .param .u64 Y) {
                 ld.param.u64 %rd1, [X];
                 ld.param.u64 %rd2, [Y];
                 mov.u32 %r1, %ctaid.x;
                 mov.u32 %r2, %ntid.x;
                 mov.u32 %r3, %tid.x;
                 mad.lo.u32 %r4, %r1, %r2, %r3;
                 mul.wide.u32 %rd3, %r4, 4;
                 add.u64 %rd4, %rd1, %rd3;
                 ld.global.f32 %f1, [%rd4];
                 add.f32 %f2, %f1, 0f3F800000;
                 add.u64 %rd5, %rd2, %rd3;
                 st.global.f32 [%rd5], %f2;
                 ret;
               }"#,
        )
        .unwrap(),
    );
    let mut host_data = HashMap::new();
    host_data.insert(
        allocs[0].id,
        (0..n).map(|i| i as f32 * 0.5).collect::<Vec<_>>(),
    );
    let mut calls = vec![ApiCall::MemcpyH2D {
        alloc: allocs[0].id,
        bytes: 4 * n,
    }];
    calls.extend((0..4).map(|i| {
        ApiCall::KernelLaunch(Launch::new(
            k.clone(),
            Dim3::x(tbs),
            Dim3::x(64),
            vec![
                ArgValue::Ptr(allocs[i].base),
                ArgValue::Ptr(allocs[i + 1].base),
            ],
        ))
    }));
    Application {
        name: "fault-chain".into(),
        space,
        calls,
        host_data,
    }
}

/// A 4-kernel chain like [`chain_app`] but with each read shifted 5 TBs
/// forward (TB `t` of kernel `k+1` reads TB `t + 5` of kernel `k`), so any
/// contiguous TB cut has parent→child edges crossing it — the
/// configuration where the interconnect actually carries data and a link
/// fault has something to hit. 16 TBs per kernel gives ≥ 8 cross-device
/// transfers for every device count in 2..=4, covering every `nth` the
/// link-fault planner can draw.
fn shifted_chain_app() -> Application {
    let tbs = 16u32;
    let shift_elems = 5u64 * 64;
    let n = tbs as u64 * 64;
    let mut space = AddressSpace::new();
    // Over-allocate so the shifted reads stay in bounds; only [0, n) is
    // ever written.
    let allocs: Vec<_> = (0..5).map(|_| space.alloc(4 * (n + shift_elems))).collect();
    let k = Arc::new(
        parse_kernel(
            r#".entry stepshift(.param .u64 X, .param .u64 Y) {
                 ld.param.u64 %rd1, [X];
                 ld.param.u64 %rd2, [Y];
                 mov.u32 %r1, %ctaid.x;
                 mov.u32 %r2, %ntid.x;
                 mov.u32 %r3, %tid.x;
                 mad.lo.u32 %r4, %r1, %r2, %r3;
                 add.u32 %r5, %r4, 320;
                 mul.wide.u32 %rd3, %r5, 4;
                 add.u64 %rd4, %rd1, %rd3;
                 ld.global.f32 %f1, [%rd4];
                 add.f32 %f2, %f1, 0f3F800000;
                 mul.wide.u32 %rd5, %r4, 4;
                 add.u64 %rd6, %rd2, %rd5;
                 st.global.f32 [%rd6], %f2;
                 ret;
               }"#,
        )
        .unwrap(),
    );
    let mut host_data = HashMap::new();
    host_data.insert(
        allocs[0].id,
        (0..n + shift_elems)
            .map(|i| i as f32 * 0.25)
            .collect::<Vec<_>>(),
    );
    let mut calls = vec![ApiCall::MemcpyH2D {
        alloc: allocs[0].id,
        bytes: 4 * (n + shift_elems),
    }];
    calls.extend((0..4).map(|i| {
        ApiCall::KernelLaunch(Launch::new(
            k.clone(),
            Dim3::x(tbs),
            Dim3::x(64),
            vec![
                ArgValue::Ptr(allocs[i].base),
                ArgValue::Ptr(allocs[i + 1].base),
            ],
        ))
    }));
    Application {
        name: "fault-shift-chain".into(),
        space,
        calls,
        host_data,
    }
}

fn fine_grain_mode(rng: &mut Rng) -> ExecMode {
    if rng.flip() {
        ExecMode::ProducerPriority { window: 2 }
    } else {
        ExecMode::ConsumerPriority {
            window: rng.range_u32(2, 4),
        }
    }
}

/// Runs one seeded case of `class`; returns `Ok(true)` if the run
/// recovered to a correct schedule, `Ok(false)` if it ended in a typed
/// error, and an error string on any property violation.
/// One seeded kill-and-resume case: the run is killed at a random interior
/// kernel boundary (after that boundary's checkpoint lands in the store),
/// then resumed — and the resumed report must be bit-identical to an
/// uninterrupted run.
fn run_kill_case(app: &Application, base_jit: &[JitKernel], rng: &mut Rng) -> Result<bool, String> {
    let hazard = HazardMode::Raw;
    let mode = fine_grain_mode(rng);
    let cfg = GpuConfig::small();
    let mut frng = FaultRng::new(rng.next_u64());
    let plan = match random_plan(FaultClass::KillPoint, base_jit, &mut frng) {
        Some(p) => p,
        None => return Err("no kill site".into()),
    };
    let reference =
        try_run_app_with(&cfg, app, mode, hazard).map_err(|e| format!("reference run: {e}"))?;
    let mut store = MemStore::default();
    let policy = CheckpointPolicy::every_kernels(1);
    match try_run_app_checkpointed(&cfg, app, mode, hazard, &plan, policy, &mut store, false) {
        Err(BmError::Engine(EngineError::Killed { .. })) => {}
        Err(e) => return Err(format!("kill run failed with the wrong error: {e}")),
        Ok(_) => return Err("kill plan did not fire".into()),
    }
    bm_testkit::prop_ensure!(
        !store.snaps.is_empty(),
        "the kill must land after its boundary's checkpoint"
    );
    let resumed = try_run_app_checkpointed(
        &cfg,
        app,
        mode,
        hazard,
        &FaultPlan::default(),
        policy,
        &mut store,
        true,
    )
    .map_err(|e| format!("resume failed: {e}"))?;
    bm_testkit::prop_ensure!(
        resumed == reference,
        "under {mode}: resumed report diverges from the uninterrupted run"
    );
    let eq = check_schedule(app, &resumed.schedule).map_err(|e| format!("replay failed: {e}"))?;
    bm_testkit::prop_ensure!(
        eq.is_match(),
        "under {mode}: resumed schedule diverges from serialized ({eq})"
    );
    Ok(true)
}

/// One seeded cancel-and-retry case: a cooperative cancellation fires at a
/// random interior kernel boundary (after that boundary's checkpoint lands
/// in the store) and must surface as a typed `EngineError::Cancelled`; the
/// retried run resumes from the checkpoint and must be bit-identical to an
/// uninterrupted run.
fn run_cancel_case(
    app: &Application,
    base_jit: &[JitKernel],
    rng: &mut Rng,
) -> Result<bool, String> {
    let hazard = HazardMode::Raw;
    let mode = fine_grain_mode(rng);
    let cfg = GpuConfig::small();
    let mut frng = FaultRng::new(rng.next_u64());
    let plan = match random_plan(FaultClass::CancelAtBoundary, base_jit, &mut frng) {
        Some(p) => p,
        None => return Err("no cancel site".into()),
    };
    let reference =
        try_run_app_with(&cfg, app, mode, hazard).map_err(|e| format!("reference run: {e}"))?;
    let mut store = MemStore::default();
    let policy = CheckpointPolicy::every_kernels(1);
    match try_run_app_checkpointed(&cfg, app, mode, hazard, &plan, policy, &mut store, false) {
        Err(BmError::Engine(EngineError::Cancelled { .. })) => {}
        Err(e) => return Err(format!("cancel run failed with the wrong error: {e}")),
        Ok(_) => return Err("cancel plan did not fire".into()),
    }
    bm_testkit::prop_ensure!(
        !store.snaps.is_empty(),
        "the cancel must land after its boundary's checkpoint"
    );
    let resumed = try_run_app_checkpointed(
        &cfg,
        app,
        mode,
        hazard,
        &FaultPlan::default(),
        policy,
        &mut store,
        true,
    )
    .map_err(|e| format!("resume after cancel failed: {e}"))?;
    bm_testkit::prop_ensure!(
        resumed == reference,
        "under {mode}: report resumed after cancel diverges from the uninterrupted run"
    );
    let eq = check_schedule(app, &resumed.schedule).map_err(|e| format!("replay failed: {e}"))?;
    bm_testkit::prop_ensure!(
        eq.is_match(),
        "under {mode}: schedule resumed after cancel diverges from serialized ({eq})"
    );
    Ok(true)
}

/// One seeded worker-panic case: a raw panic fires at a random interior
/// kernel boundary. The panic must be containable by `catch_unwind` (no
/// aborts, no poisoned global state), the boundary checkpoint must already
/// be durable, the resumed run must be bit-identical to an uninterrupted
/// run, and a fresh unrelated run in the same process must be unaffected —
/// no cross-request state leakage between worker reuses.
fn run_panic_case(
    app: &Application,
    base_jit: &[JitKernel],
    rng: &mut Rng,
) -> Result<bool, String> {
    let hazard = HazardMode::Raw;
    let mode = fine_grain_mode(rng);
    let cfg = GpuConfig::small();
    let mut frng = FaultRng::new(rng.next_u64());
    let plan = match random_plan(FaultClass::WorkerPanic, base_jit, &mut frng) {
        Some(p) => p,
        None => return Err("no panic site".into()),
    };
    let reference =
        try_run_app_with(&cfg, app, mode, hazard).map_err(|e| format!("reference run: {e}"))?;
    let mut store = MemStore::default();
    let policy = CheckpointPolicy::every_kernels(1);
    let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        try_run_app_checkpointed(&cfg, app, mode, hazard, &plan, policy, &mut store, false)
    }));
    bm_testkit::prop_ensure!(res.is_err(), "panic plan did not unwind");
    bm_testkit::prop_ensure!(
        !store.snaps.is_empty(),
        "the panic must land after its boundary's checkpoint"
    );
    // The panicked worker's engine state is gone; only the store survives.
    let resumed = try_run_app_checkpointed(
        &cfg,
        app,
        mode,
        hazard,
        &FaultPlan::default(),
        policy,
        &mut store,
        true,
    )
    .map_err(|e| format!("resume after panic failed: {e}"))?;
    bm_testkit::prop_ensure!(
        resumed == reference,
        "under {mode}: report resumed after panic diverges from the uninterrupted run"
    );
    // Containment: a clean run in the same process after the unwind must
    // match the reference exactly — the panic left nothing behind.
    let clean =
        try_run_app_with(&cfg, app, mode, hazard).map_err(|e| format!("post-panic run: {e}"))?;
    bm_testkit::prop_ensure!(
        clean == reference,
        "under {mode}: a clean run after a contained panic diverges — state leaked"
    );
    Ok(true)
}

/// One seeded link-fault case: a multi-device run whose interconnect
/// drops or corrupts a cross-device transfer. The attempt must degrade
/// gracefully — a single-device rerun recorded as
/// [`DegradationReason::LinkFault`], bit-identical to a clean run, never a
/// panic or a wrong accepted result.
fn run_link_case(app: &Application, base_jit: &[JitKernel], rng: &mut Rng) -> Result<bool, String> {
    let hazard = HazardMode::Raw;
    let mode = fine_grain_mode(rng);
    let cfg = GpuConfig::small();
    let mut frng = FaultRng::new(rng.next_u64());
    let plan = match random_plan(FaultClass::LinkFault, base_jit, &mut frng) {
        Some(p) => p,
        None => return Err("no link-fault site".into()),
    };
    let devices = 2 + frng.below(3) as u32;
    let mcfg = MultiGpuConfig::devices(devices);
    let report = try_run_app_multi_faulty(&cfg, &mcfg, app, mode, hazard, &plan, &NullTracer)
        .map_err(|e| {
            format!("link fault under {mode}, {devices} devices, must degrade, not fail: {e}")
        })?;
    let multi = report
        .multi
        .as_ref()
        .ok_or_else(|| "fallback must keep the multi section".to_string())?;
    let (reason, cycle) = multi.fallback.ok_or_else(|| {
        format!("{devices} devices under {mode}: the injected fault did not fire")
    })?;
    bm_testkit::prop_ensure!(
        reason == DegradationReason::LinkFault,
        "wrong degradation reason {reason:?}"
    );
    bm_testkit::prop_ensure!(cycle > 0, "detection cycle must be stamped");
    let eq = check_schedule(app, &report.schedule).map_err(|e| format!("replay failed: {e}"))?;
    bm_testkit::prop_ensure!(
        eq.is_match(),
        "under {mode}: degraded schedule diverges from serialized ({eq})"
    );
    // The fallback is a clean single-device run, bit for bit.
    let clean = try_run_app_with(&cfg, app, mode, hazard).map_err(|e| format!("clean run: {e}"))?;
    let mut stripped = report.clone();
    stripped.multi = None;
    bm_testkit::prop_ensure!(
        stripped == clean,
        "under {mode}: degraded run diverges from a clean single-device run"
    );
    Ok(true)
}

fn run_case(
    class: FaultClass,
    app: &Application,
    base_jit: &[JitKernel],
    rng: &mut Rng,
) -> Result<bool, String> {
    if class == FaultClass::LinkFault {
        return run_link_case(app, base_jit, rng);
    }
    if class == FaultClass::KillPoint {
        return run_kill_case(app, base_jit, rng);
    }
    if class == FaultClass::CancelAtBoundary {
        return run_cancel_case(app, base_jit, rng);
    }
    if class == FaultClass::WorkerPanic {
        return run_panic_case(app, base_jit, rng);
    }
    let hazard = HazardMode::Raw;
    let mode = fine_grain_mode(rng);
    let mut jit = base_jit.to_vec();
    let mut frng = FaultRng::new(rng.next_u64());
    let plan = if class.is_static() {
        // Corrupt a random kernel's analysis products before the run.
        let k = 1 + frng.below(jit.len() as u64 - 1) as usize;
        let applied = match class {
            FaultClass::CorruptAccessSet => corrupt_access_set(&mut jit, k, hazard),
            _ => corrupt_pattern(&mut jit, k),
        };
        if !applied {
            return Err(format!("no corruption site for {class:?} at kernel {k}"));
        }
        FaultPlan::default()
    } else {
        match random_plan(class, &jit, &mut frng) {
            Some(p) => p,
            None => return Err(format!("no injection site for {class:?}")),
        }
    };
    match try_run_app_faulty(&GpuConfig::small(), app, jit, mode, hazard, &plan) {
        Ok(report) => {
            // An accepted run must be architecturally invisible.
            let eq =
                check_schedule(app, &report.schedule).map_err(|e| format!("replay failed: {e}"))?;
            bm_testkit::prop_ensure!(
                eq.is_match(),
                "{class:?} under {mode}: accepted run diverges from serialized ({eq})"
            );
            // Classes that always perturb the live dependency hardware
            // must have been caught and recovered, not silently absorbed.
            let must_recover = matches!(
                class,
                FaultClass::DropChild
                    | FaultClass::PhantomChild
                    | FaultClass::CounterExcess
                    | FaultClass::CounterDeficit
                    | FaultClass::CounterSaturation
                    | FaultClass::CorruptAccessSet
            );
            if must_recover {
                bm_testkit::prop_ensure!(
                    report.guard.recovery_rounds >= 1,
                    "{class:?} under {mode}: fault absorbed without any recovery round"
                );
                bm_testkit::prop_ensure!(
                    report.guard.cycles_lost_to_fallback > 0,
                    "{class:?}: recovery must account discarded cycles"
                );
            }
            if class == FaultClass::BufferSpill {
                // Benign fault: correct first time, just more traffic.
                bm_testkit::prop_ensure!(
                    report.guard.recovery_rounds == 0,
                    "{class:?}: spills must not trigger the guard"
                );
                bm_testkit::prop_ensure!(
                    report.hw_traffic.counter_writebacks > 0,
                    "{class:?}: a 1-3 entry buffer must spill"
                );
            }
            Ok(true)
        }
        // A typed error is an acceptable terminal state — the contract
        // forbids wrong results, panics, and hangs, not failure itself.
        Err(_typed) => Ok(false),
    }
}

fn check_class(class: FaultClass) {
    // Link faults need cut-crossing edges; the identity chain has none
    // (a contiguous cut never separates TB t from its sole parent t).
    let app = if class == FaultClass::LinkFault {
        shifted_chain_app()
    } else {
        chain_app()
    };
    let base_jit =
        try_jit_analyze_app(&GpuConfig::small(), &app, HazardMode::Raw).expect("clean analysis");
    // Distinct base seed per class so cases are uncorrelated across tests.
    let base_seed = 0xB10C_0000 ^ (class as u64) << 8;
    let mut recovered = 0u32;
    check_cases(base_seed, SEEDS_PER_CLASS, |rng| {
        run_case(class, &app, &base_jit, rng).map(|ok| {
            if ok {
                recovered += 1;
            }
        })
    });
    // Guard against a vacuous pass: the typed-error escape hatch must not
    // swallow the whole class — quarantine-to-barrier recovery is expected
    // to succeed for every fault model we inject.
    assert_eq!(
        recovered as usize, SEEDS_PER_CLASS,
        "{class:?}: {recovered}/{SEEDS_PER_CLASS} cases recovered; the rest fell through to typed errors"
    );
}

#[test]
fn drop_child_recovers_or_errors() {
    check_class(FaultClass::DropChild);
}

#[test]
fn phantom_child_recovers_or_errors() {
    check_class(FaultClass::PhantomChild);
}

#[test]
fn counter_excess_recovers_or_errors() {
    check_class(FaultClass::CounterExcess);
}

#[test]
fn counter_deficit_recovers_or_errors() {
    check_class(FaultClass::CounterDeficit);
}

#[test]
fn counter_saturation_recovers_or_errors() {
    check_class(FaultClass::CounterSaturation);
}

#[test]
fn buffer_spill_is_benign() {
    check_class(FaultClass::BufferSpill);
}

#[test]
fn corrupt_access_set_is_caught_by_the_guard() {
    check_class(FaultClass::CorruptAccessSet);
}

#[test]
fn corrupt_pattern_never_yields_wrong_results() {
    check_class(FaultClass::CorruptPattern);
}

#[test]
fn kill_point_resumes_bit_identically() {
    check_class(FaultClass::KillPoint);
}

#[test]
fn cancel_at_boundary_resumes_bit_identically() {
    check_class(FaultClass::CancelAtBoundary);
}

#[test]
fn worker_panic_is_contained_and_resumable() {
    // The injected panic prints its message per case; silence nothing —
    // the containment assertions below are what matter.
    check_class(FaultClass::WorkerPanic);
}

#[test]
fn link_fault_degrades_to_a_single_device() {
    check_class(FaultClass::LinkFault);
}

#[test]
fn every_fault_class_is_covered() {
    // 12 classes x 32 seeds = 384 cases across the suite.
    assert_eq!(FaultClass::all().len() * SEEDS_PER_CLASS, 384);
}
