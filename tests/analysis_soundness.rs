//! Soundness of the launch-time value-range analysis: for every kernel of
//! every benchmark, every global-memory address a thread block actually
//! touches during functional execution must be contained in the read/write
//! sets the abstract interpreter computed for that block. (Precision is
//! tested elsewhere; this test is about never *missing* an access, which
//! is what correctness of the dependency graphs rests on.)

use bm_ptx::absint::analyze_launch;
use bm_ptx::interp::{execute_block, ExecObserver, ThreadId};
use bm_ptx::isa::Op;
use bm_workloads::{suite, Scale};

#[derive(Default)]
struct AccessLog {
    reads: Vec<u64>,
    writes: Vec<u64>,
}

impl ExecObserver for AccessLog {
    fn on_inst(&mut self, _t: ThreadId, _i: usize, _op: &Op) {}
    fn on_global_access(&mut self, _t: ThreadId, _i: usize, addr: u64, store: bool) {
        if store {
            self.writes.push(addr);
        } else {
            self.reads.push(addr);
        }
    }
}

#[test]
fn analyzed_sets_cover_every_functional_access() {
    for bench in suite() {
        let app = (bench.build)(Scale::Small);
        let mut mem = app.initial_memory();
        for (ki, launch) in app.launches().iter().enumerate() {
            let access = analyze_launch(launch);
            for tb in 0..launch.num_blocks() {
                let mut log = AccessLog::default();
                execute_block(launch, tb, &mut mem, &mut log)
                    .unwrap_or_else(|e| panic!("{} kernel {ki}: {e}", bench.name));
                if access.non_static {
                    continue; // conservative kernels make no claims
                }
                let sets = &access.per_tb[tb as usize];
                for &addr in &log.reads {
                    assert!(
                        sets.reads.contains(addr),
                        "{} kernel {ki} TB{tb}: read {addr:#x} outside analyzed set {}",
                        bench.name,
                        sets.reads
                    );
                }
                for &addr in &log.writes {
                    assert!(
                        sets.writes.contains(addr),
                        "{} kernel {ki} TB{tb}: write {addr:#x} outside analyzed set {}",
                        bench.name,
                        sets.writes
                    );
                }
            }
        }
    }
}

#[test]
fn analysis_is_not_vacuously_conservative() {
    // At least three quarters of all kernels across the suite must be
    // statically analyzable (no taint bail-out) — the paper's whole point
    // is that real multi-kernel apps expose static access patterns.
    let mut total = 0usize;
    let mut static_ok = 0usize;
    for bench in suite() {
        let app = (bench.build)(Scale::Small);
        for launch in app.launches() {
            total += 1;
            if !analyze_launch(launch).non_static {
                static_ok += 1;
            }
        }
    }
    assert!(
        static_ok * 4 >= total * 3,
        "only {static_ok}/{total} kernels statically analyzable"
    );
}

#[test]
fn per_tb_sets_are_reasonably_tight() {
    // Precision guard: for the embarrassingly-parallel benchmarks, a TB's
    // analyzed write set must not be more than 4x the bytes it actually
    // writes (hulls may round up, but must not blow up to whole buffers).
    for name in ["BICG", "MVT", "HS", "PATH"] {
        let bench = suite().into_iter().find(|b| b.name == name).unwrap();
        let app = (bench.build)(Scale::Small);
        let mut mem = app.initial_memory();
        for launch in app.launches() {
            let access = analyze_launch(launch);
            assert!(!access.non_static, "{name} should be static");
            for tb in 0..launch.num_blocks() {
                let mut log = AccessLog::default();
                execute_block(launch, tb, &mut mem, &mut log).unwrap();
                log.writes.sort_unstable();
                log.writes.dedup();
                let actual = 4 * log.writes.len() as u64;
                let claimed = access.per_tb[tb as usize].writes.total_bytes();
                if actual > 0 {
                    assert!(
                        claimed <= actual * 4,
                        "{name} TB{tb}: claimed {claimed}B vs actual {actual}B"
                    );
                }
            }
        }
    }
}
