//! JSON round-trip coverage for machine-readable outputs.
//!
//! `RunReport::to_json` and the snapshot manifest are consumed by CI
//! diffs and external tooling, so their serialization must be strict:
//! serialize → parse → re-serialize is byte-identical, including edge
//! values (`u64::MAX` counters, above the f64-lossless 2^53 boundary)
//! and degenerate shapes (empty sections, zero kernels).

use blockmaestro::{manifest, run_app_with, ExecMode, MemStore, RunSnapshot, SnapshotStore};
use bm_cmdq::{ApiCall, Application};
use bm_depgraph::HazardMode;
use bm_ptx::kernel::{ArgValue, Dim3, Launch};
use bm_ptx::mem::AddressSpace;
use bm_ptx::parser::parse_kernel;
use bm_simt::GpuConfig;
use bm_trace::json::{parse, Json};
use std::collections::HashMap;
use std::sync::Arc;

fn two_kernel_app() -> Application {
    let n = 4u64 * 64;
    let mut space = AddressSpace::new();
    let a = space.alloc(4 * n);
    let b = space.alloc(4 * n);
    let c = space.alloc(4 * n);
    let k = Arc::new(
        parse_kernel(
            r#".entry step(.param .u64 X, .param .u64 Y) {
                 ld.param.u64 %rd1, [X];
                 ld.param.u64 %rd2, [Y];
                 mov.u32 %r1, %ctaid.x;
                 mov.u32 %r2, %ntid.x;
                 mov.u32 %r3, %tid.x;
                 mad.lo.u32 %r4, %r1, %r2, %r3;
                 mul.wide.u32 %rd3, %r4, 4;
                 add.u64 %rd4, %rd1, %rd3;
                 ld.global.f32 %f1, [%rd4];
                 add.f32 %f2, %f1, 0f3F800000;
                 add.u64 %rd5, %rd2, %rd3;
                 st.global.f32 [%rd5], %f2;
                 ret;
               }"#,
        )
        .unwrap(),
    );
    let mut host_data = HashMap::new();
    host_data.insert(a.id, (0..n).map(|i| i as f32).collect::<Vec<_>>());
    Application {
        name: "json-app".into(),
        space,
        calls: vec![
            ApiCall::MemcpyH2D {
                alloc: a.id,
                bytes: 4 * n,
            },
            ApiCall::KernelLaunch(Launch::new(
                k.clone(),
                Dim3::x(4),
                Dim3::x(64),
                vec![ArgValue::Ptr(a.base), ArgValue::Ptr(b.base)],
            )),
            ApiCall::KernelLaunch(Launch::new(
                k,
                Dim3::x(4),
                Dim3::x(64),
                vec![ArgValue::Ptr(b.base), ArgValue::Ptr(c.base)],
            )),
        ],
        host_data,
    }
}

fn assert_roundtrip(doc: &Json, what: &str) {
    let text = doc.to_string();
    let parsed = parse(&text).unwrap_or_else(|e| panic!("{what}: strict parse failed: {e}"));
    assert_eq!(
        parsed.to_string(),
        text,
        "{what}: re-serialization is not byte-identical"
    );
}

#[test]
fn run_report_roundtrips() {
    let cfg = GpuConfig::small();
    let app = two_kernel_app();
    let report = run_app_with(
        &cfg,
        &app,
        ExecMode::ConsumerPriority { window: 2 },
        HazardMode::Raw,
    );
    assert_roundtrip(&report.to_json(), "RunReport");
}

#[test]
fn run_report_with_umax_counters_roundtrips_losslessly() {
    let cfg = GpuConfig::small();
    let app = two_kernel_app();
    let mut report = run_app_with(
        &cfg,
        &app,
        ExecMode::ConsumerPriority { window: 2 },
        HazardMode::Raw,
    );
    // Counters above 2^53 cannot survive an f64 JSON number; they must be
    // carried as decimal strings, exactly.
    report.total_cycles = u64::MAX;
    report.kernel_region_cycles = u64::MAX - 1;
    report.baseline_mem_requests = (1 << 53) + 1;
    report.overhead_mem_requests = u64::MAX / 3;
    report.storage_encoded = u64::MAX;
    report.guard.cycles_lost_to_fallback = u64::MAX;
    let doc = report.to_json();
    assert_roundtrip(&doc, "RunReport with u64::MAX");
    let text = doc.to_string();
    assert!(
        text.contains(&format!("\"total_cycles\":\"{}\"", u64::MAX)),
        "u64::MAX must serialize as a lossless decimal string: {text}"
    );
    let parsed = parse(&text).unwrap();
    if let Json::Obj(map) = &parsed {
        assert_eq!(
            map.get("total_cycles"),
            Some(&Json::Str(u64::MAX.to_string()))
        );
    } else {
        panic!("report must parse to an object");
    }
}

#[test]
fn small_u64_counters_stay_plain_numbers() {
    // Below 2^53 the compact numeric form is kept, so existing consumers
    // keep seeing numbers.
    let cfg = GpuConfig::small();
    let app = two_kernel_app();
    let report = run_app_with(
        &cfg,
        &app,
        ExecMode::ConsumerPriority { window: 2 },
        HazardMode::Raw,
    );
    let text = report.to_json().to_string();
    assert!(
        text.contains(&format!("\"total_cycles\":{}", report.total_cycles)),
        "small counters must serialize as bare numbers: {text}"
    );
}

#[test]
fn snapshot_manifest_roundtrips() {
    use blockmaestro::{
        app_fingerprint, try_jit_analyze_app, try_run_analyzed_checkpointed, CheckpointPolicy,
        CheckpointSession, FaultPlan,
    };
    use bm_trace::NullTracer;
    let cfg = GpuConfig::small();
    let app = two_kernel_app();
    let jit = try_jit_analyze_app(&cfg, &app, HazardMode::Raw).unwrap();
    let mut store = MemStore::default();
    let mut session = CheckpointSession::disabled();
    session.policy = CheckpointPolicy::every_kernels(1);
    session.store = Some(&mut store);
    session.app_fp = app_fingerprint(&app);
    session.hazard = format!("{:?}", HazardMode::Raw);
    try_run_analyzed_checkpointed(
        &cfg,
        &app,
        &jit,
        ExecMode::ConsumerPriority { window: 2 },
        &FaultPlan::default(),
        &NullTracer,
        &mut session,
    )
    .unwrap();
    let bytes = store.load().unwrap().expect("one snapshot saved");
    let doc = manifest(&bytes).expect("manifest from valid snapshot");
    assert_roundtrip(&doc, "snapshot manifest");
    if let Json::Obj(map) = &doc {
        assert_eq!(
            map.get("version"),
            Some(&Json::u64(u64::from(blockmaestro::FORMAT_VERSION)))
        );
        assert!(matches!(map.get("sections"), Some(Json::Arr(s)) if !s.is_empty()));
    } else {
        panic!("manifest must be an object");
    }
}

#[test]
fn empty_snapshot_sections_roundtrip_through_the_manifest() {
    // A default RunSnapshot has empty kernels/trace/order — the container
    // and its manifest must handle zero-length sections.
    let snap = RunSnapshot::default();
    let bytes = snap.encode();
    assert_eq!(RunSnapshot::decode(&bytes).unwrap(), snap);
    let doc = manifest(&bytes).expect("manifest from empty snapshot");
    assert_roundtrip(&doc, "empty snapshot manifest");
}
