//! Multi-GPU execution must be programmer-transparent *and* reproducible:
//!
//! * `devices = 1` through `bm-multi` must be bit-identical to the plain
//!   single-device engine — the `RunReport` **and** the recorded trace
//!   stream — in every execution mode;
//! * `devices = N` must be bit-reproducible across repeated runs and
//!   across host-side analysis thread counts (the coordinator is
//!   single-threaded; host parallelism only touches the JIT pipeline,
//!   which is itself deterministic).

mod common;

use blockmaestro::{
    jit_analyze_app_par, try_run_analyzed_traced, AnalysisBudget, AnalysisCache, ExecMode,
    JitKernel, ParallelConfig,
};
use bm_cmdq::Application;
use bm_depgraph::HazardMode;
use bm_multi::{try_run_analyzed_multi_traced, MultiGpuConfig};
use bm_simt::GpuConfig;
use bm_testkit::{check_cases, prop_ensure, Rng};
use bm_trace::RecordingTracer;
use common::{build_random_app, KernelSpec};

const ALL_MODES: [ExecMode; 6] = [
    ExecMode::Baseline,
    ExecMode::IdealBaseline,
    ExecMode::GraphLaunch,
    ExecMode::PreLaunch { window: 3 },
    ExecMode::ProducerPriority { window: 3 },
    ExecMode::ConsumerPriority { window: 3 },
];

/// Shifted-stencil specs whose explicit graphs have edges that cross any
/// contiguous TB cut — the interesting case for sharding.
fn gen_spec(rng: &mut Rng, n_buffers: usize) -> KernelSpec {
    let mut s = KernelSpec {
        src_buf: rng.range_usize(0, n_buffers),
        dst_buf: rng.range_usize(0, n_buffers),
        shift: rng.range_u32(0, 40),
        tbs: rng.range_u32(12, 48),
    };
    if s.src_buf == s.dst_buf {
        s.dst_buf = (s.dst_buf + 1) % n_buffers;
    }
    s
}

fn reference_jit(cfg: &GpuConfig, app: &Application) -> Vec<JitKernel> {
    let budget = AnalysisBudget::default();
    let mut cache = AnalysisCache::for_budget(&budget);
    jit_analyze_app_par(
        cfg,
        app,
        HazardMode::Raw,
        &budget,
        &mut cache,
        &ParallelConfig::reference(),
    )
}

#[test]
fn one_device_is_bit_identical_to_the_single_engine() {
    check_cases(0x517A, 12, |rng| {
        let n_buffers = rng.range_usize(2, 4);
        let n_specs = rng.range_usize(2, 5);
        let specs: Vec<KernelSpec> = (0..n_specs).map(|_| gen_spec(rng, n_buffers)).collect();
        let app = build_random_app(n_buffers, &specs);
        let cfg = GpuConfig::small();
        let jit = reference_jit(&cfg, &app);
        let mcfg = MultiGpuConfig::devices(1);
        for mode in ALL_MODES {
            let single_tracer = RecordingTracer::new();
            let single = try_run_analyzed_traced(&cfg, &app, &jit, mode, &single_tracer)
                .map_err(|e| format!("single {mode}: {e}"))?;
            let multi_tracer = RecordingTracer::new();
            let multi = try_run_analyzed_multi_traced(&cfg, &mcfg, &app, &jit, mode, &multi_tracer)
                .map_err(|e| format!("multi {mode}: {e}"))?;
            prop_ensure!(
                multi == single,
                "devices=1 report diverged under {mode} for specs {specs:?}"
            );
            prop_ensure!(
                multi_tracer.events() == single_tracer.events(),
                "devices=1 trace stream diverged under {mode} for specs {specs:?}"
            );
            prop_ensure!(
                multi.multi.is_none(),
                "devices=1 must not grow a multi section ({mode})"
            );
        }
        Ok(())
    });
}

#[test]
fn n_devices_is_reproducible_across_runs_and_thread_counts() {
    check_cases(0x517B, 12, |rng| {
        let n_buffers = rng.range_usize(2, 4);
        let n_specs = rng.range_usize(2, 5);
        let specs: Vec<KernelSpec> = (0..n_specs).map(|_| gen_spec(rng, n_buffers)).collect();
        let app = build_random_app(n_buffers, &specs);
        let cfg = GpuConfig::small();
        let devices = [2u32, 3][rng.range_usize(0, 2)];
        let mcfg = MultiGpuConfig::devices(devices);
        let mode = ALL_MODES[rng.range_usize(0, ALL_MODES.len())];

        let jit = reference_jit(&cfg, &app);
        let ref_tracer = RecordingTracer::new();
        let reference = try_run_analyzed_multi_traced(&cfg, &mcfg, &app, &jit, mode, &ref_tracer)
            .map_err(|e| format!("reference {mode}: {e}"))?;

        // Bit-identical on a plain re-run (report and trace stream).
        let re_tracer = RecordingTracer::new();
        let rerun = try_run_analyzed_multi_traced(&cfg, &mcfg, &app, &jit, mode, &re_tracer)
            .map_err(|e| format!("rerun {mode}: {e}"))?;
        prop_ensure!(
            rerun == reference,
            "devices={devices} report not reproducible under {mode} for specs {specs:?}"
        );
        prop_ensure!(
            re_tracer.events() == ref_tracer.events(),
            "devices={devices} trace not reproducible under {mode} for specs {specs:?}"
        );

        // Bit-identical when the JIT pipeline ran with different host
        // thread counts / fast-path configurations.
        let budget = AnalysisBudget::default();
        for par in [
            ParallelConfig::serial(),
            ParallelConfig::with_threads(8).oversubscribed(),
        ] {
            let mut cache = AnalysisCache::for_budget(&budget);
            let jit_par =
                jit_analyze_app_par(&cfg, &app, HazardMode::Raw, &budget, &mut cache, &par);
            let par_tracer = RecordingTracer::new();
            let report =
                try_run_analyzed_multi_traced(&cfg, &mcfg, &app, &jit_par, mode, &par_tracer)
                    .map_err(|e| format!("{par:?} {mode}: {e}"))?;
            prop_ensure!(
                report == reference,
                "devices={devices} report diverged under {par:?}, {mode}, specs {specs:?}"
            );
            prop_ensure!(
                par_tracer.events() == ref_tracer.events(),
                "devices={devices} trace diverged under {par:?}, {mode}, specs {specs:?}"
            );
        }
        Ok(())
    });
}
